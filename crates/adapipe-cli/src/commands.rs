//! The CLI subcommands: `plan`, `sweep`, `compare`, `serve`, `query`,
//! `models`, and friends.

use crate::args::Args;
use crate::config::{self, ConfigError};
use adapipe::{best_outcome, sweep_parallel_strategies, ChaosConfig, Method, Planner};
use adapipe_exec::ExecPool;
use adapipe_faults::{DegradedCluster, FaultPlan};
use adapipe_memory::OptimizerSpec;
use adapipe_obs::{keys, Recorder};
use adapipe_partition::CacheStats;
use adapipe_serve::{client, PlanRequest, ServeConfig, Server};
use adapipe_units::MicroSecs;
use std::time::Duration;

/// Writes an output artifact, creating missing parent directories
/// first so `--out results/deep/file.json` works on a fresh checkout.
/// Failure is an artifact error (exit code 1): the computation
/// succeeded but the deliverable was not produced.
fn write_artifact(path: &str, contents: &str) -> Result<(), ConfigError> {
    let artifact = |e: std::io::Error| ConfigError::Artifact {
        path: path.to_string(),
        message: e.to_string(),
    };
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(artifact)?;
        }
    }
    std::fs::write(path, contents).map_err(artifact)
}

/// The observability flags shared by `plan`, `sweep` and `compare`:
/// `--metrics-out FILE` (JSON metrics report) and `--chrome-trace FILE`
/// (Chrome Trace Event Format spans).
struct ObsSink {
    rec: Recorder,
    metrics_out: Option<String>,
    chrome_trace: Option<String>,
}

impl ObsSink {
    /// Takes the obs flags. `always_on` forces an enabled recorder even
    /// without output files (sweep/compare print iso-cache stats from
    /// it); `plan` keeps the free disabled recorder unless asked.
    fn from_args(args: &mut Args, always_on: bool) -> Self {
        let metrics_out = args.take("metrics-out");
        let chrome_trace = args.take("chrome-trace");
        let rec = if always_on || metrics_out.is_some() || chrome_trace.is_some() {
            Recorder::new()
        } else {
            Recorder::disabled()
        };
        ObsSink {
            rec,
            metrics_out,
            chrome_trace,
        }
    }

    /// Hit/miss stats of the §5.3 isomorphism cache, if any lookups
    /// were recorded.
    fn iso_cache_stats(&self) -> Option<CacheStats> {
        let snap = self.rec.snapshot();
        let hits = snap.counters.get(keys::ISO_CACHE_HITS).copied()?;
        let misses = snap
            .counters
            .get(keys::ISO_CACHE_MISSES)
            .copied()
            .unwrap_or(0);
        let stats = CacheStats::new(hits, misses);
        (stats.lookups() > 0).then_some(stats)
    }

    /// Writes the requested artifacts and returns status lines for the
    /// human-readable output.
    fn flush(&self, meta: &[(&str, &str)]) -> Result<String, ConfigError> {
        let mut out = String::new();
        if self.metrics_out.is_none() && self.chrome_trace.is_none() {
            return Ok(out);
        }
        if let Some(stats) = self.iso_cache_stats() {
            self.rec.gauge(keys::ISO_CACHE_HIT_RATE, stats.hit_rate());
        }
        // lint: allow(swallowed-result): None only means the subproblem cache saw no traffic
        let _sub = keys::publish_subcache_hit_rate(&self.rec);
        let snap = self.rec.snapshot();
        if let Some(path) = &self.metrics_out {
            let json = adapipe_obs::report::metrics_json(&snap, meta);
            write_artifact(path, &json)?;
            out.push_str(&format!("metrics written to {path}\n"));
        }
        if let Some(path) = &self.chrome_trace {
            let json = adapipe_obs::trace::chrome_trace_json(&snap);
            write_artifact(path, &json)?;
            out.push_str(&format!(
                "chrome trace written to {path} ({} spans)\n",
                snap.spans.len()
            ));
        }
        Ok(out)
    }
}

/// Applies the shared planner flags (`--headroom`, `--fp32-grads`).
fn build_planner(args: &mut Args) -> Result<Planner, ConfigError> {
    let model = config::model(args)?;
    let cluster = config::cluster(args)?;
    let mut planner = Planner::new(model, cluster);
    if let Some(headroom) = args.take_parsed::<f64>("headroom", "a fraction in (0, 1]")? {
        if !(headroom > 0.0 && headroom <= 1.0) {
            return Err(ConfigError::Domain(format!(
                "--headroom {headroom} must be in (0, 1]"
            )));
        }
        planner = planner.with_search_headroom(headroom);
    }
    if let Some(flag) = args.take("fp32-grads") {
        match flag.as_str() {
            "true" => planner = planner.with_optimizer(OptimizerSpec::adam_fp32_grad_accum()),
            "false" => {}
            other => {
                return Err(ConfigError::BadChoice {
                    flag: "fp32-grads",
                    value: other.to_string(),
                    choices: "true, false",
                })
            }
        }
    }
    // ADAPIPE_THREADS > 1 opts the search into parallel leaf prefill
    // (plans are byte-identical either way, see docs/parallel.md).
    let pool = ExecPool::from_env();
    if pool.threads() > 1 {
        planner = planner.with_exec_pool(std::sync::Arc::new(pool));
    }
    Ok(planner)
}

/// `adapipe plan`: one method, one strategy, full plan dump
/// (optionally saved to `--out FILE` in the plan text format).
pub fn plan(mut args: Args) -> Result<String, ConfigError> {
    let method = config::method(&mut args)?;
    let sink = ObsSink::from_args(&mut args, false);
    let planner = build_planner(&mut args)?.with_recorder(sink.rec.clone());
    let out_file = args.take("out");
    let parallel = config::parallel(&mut args)?;
    let train = config::workload(&mut args)?;
    args.finish()?;

    match planner.plan(method, parallel, train) {
        Ok(plan) => {
            let eval = planner.evaluate(&plan);
            let mut out = format!("{plan}\nevaluation: {eval}\n");
            if let Some(path) = out_file {
                write_artifact(&path, &adapipe::plan_io::to_text(&plan))?;
                out.push_str(&format!("plan written to {path}\n"));
            }
            out.push_str(&sink.flush(&[
                ("command", "plan"),
                ("model", planner.model().name()),
                ("method", &method.to_string()),
            ])?);
            Ok(out)
        }
        Err(e) => Ok(format!("{method} cannot run at {parallel}: {e}\n")),
    }
}

/// Reads a plan file written by `plan --out`. The second element
/// carries parser warnings (e.g. a legacy v1 file whose seconds were
/// converted to microseconds) formatted as ready-to-print lines.
fn read_plan(args: &mut Args) -> Result<(adapipe::Plan, String), ConfigError> {
    let path = args.require("plan")?;
    let text = std::fs::read_to_string(&path)
        .map_err(|e| ConfigError::Domain(format!("cannot read {path}: {e}")))?;
    let (plan, warnings) = adapipe::plan_io::from_text_with_warnings(&text)
        .map_err(|e| ConfigError::Domain(e.to_string()))?;
    let rendered = warnings.iter().map(|w| format!("warning: {w}\n")).collect();
    Ok((plan, rendered))
}

/// `adapipe show`: print a saved plan and re-evaluate it.
pub fn show(mut args: Args) -> Result<String, ConfigError> {
    let (plan, warnings) = read_plan(&mut args)?;
    let planner = build_planner(&mut args)?;
    args.finish()?;
    let eval = planner.evaluate(&plan);
    Ok(format!("{warnings}{plan}\nevaluation: {eval}\n"))
}

/// `adapipe trace`: simulate a saved plan and emit Chrome-trace JSON
/// (load in chrome://tracing or Perfetto).
pub fn trace(mut args: Args) -> Result<String, ConfigError> {
    let (plan, warnings) = read_plan(&mut args)?;
    let out_file = args.take("out");
    let planner = build_planner(&mut args)?;
    args.finish()?;
    let eval = planner.evaluate(&plan);
    let json = adapipe_sim::render::to_chrome_trace(&eval.report);
    match out_file {
        Some(path) => {
            write_artifact(&path, &json)?;
            Ok(format!(
                "{warnings}{} events written to {path} ({:.3}s makespan)\n",
                eval.report.timeline.len(),
                eval.iteration_time.as_secs()
            ))
        }
        None => Ok(json),
    }
}

/// Parses a `--flag true|false` pair (absent means `false`).
fn bool_flag(args: &mut Args, flag: &'static str) -> Result<bool, ConfigError> {
    match args.take(flag).as_deref() {
        None | Some("false") => Ok(false),
        Some("true") => Ok(true),
        Some(other) => Err(ConfigError::BadChoice {
            flag,
            value: other.to_string(),
            choices: "true, false",
        }),
    }
}

/// `adapipe verify`: statically check a saved plan against the paper's
/// feasibility invariants (Eq. (1)-(3), partition cover, schedule DAG)
/// without executing it. `--quick true` skips the iso-cache spot-check.
/// `--optimality true` additionally certifies the plan against its
/// analytic lower bound and cross-checks the planner's DPs against the
/// brute-force oracles (see docs/verification.md).
pub fn verify(mut args: Args) -> Result<String, ConfigError> {
    let (plan, warnings) = read_plan(&mut args)?;
    let quick = bool_flag(&mut args, "quick")?;
    let optimality = bool_flag(&mut args, "optimality")?;
    let epsilon: Option<f64> = args.take_parsed("epsilon", "a fraction like 0.35")?;
    let oracle_seed: Option<u64> = args.take_parsed("oracle-seed", "an unsigned integer")?;
    let oracle_iters: Option<usize> = args.take_parsed("oracle-iters", "an instance count")?;
    let cert_out = args.take("certificate-out");
    if !optimality
        && (epsilon.is_some()
            || oracle_seed.is_some()
            || oracle_iters.is_some()
            || cert_out.is_some())
    {
        return Err(ConfigError::Domain(
            "--epsilon/--oracle-seed/--oracle-iters/--certificate-out need --optimality true"
                .to_string(),
        ));
    }
    let sink = ObsSink::from_args(&mut args, false);
    let planner = build_planner(&mut args)?.with_recorder(sink.rec.clone());
    args.finish()?;
    let opts = if quick {
        adapipe::VerifyOptions::quick()
    } else {
        adapipe::VerifyOptions::default()
    };
    let mut report = planner.verify_with(&plan, opts);
    let mut extra = String::new();
    if optimality {
        let mut oopts = adapipe::OptimalityOptions::default();
        if let Some(e) = epsilon {
            if !(e.is_finite() && e >= 0.0) {
                return Err(ConfigError::Domain(format!(
                    "--epsilon must be a non-negative fraction, got {e}"
                )));
            }
            oopts.epsilon = e;
        }
        if let Some(s) = oracle_seed {
            oopts.search_seed = s;
        }
        if let Some(i) = oracle_iters {
            oopts.search_iterations = i;
        }
        report.extend(
            planner
                .verify_optimality(&plan, &oopts)
                .diagnostics()
                .iter()
                .cloned(),
        );
        if let Some(path) = &cert_out {
            match planner.certificate(&plan) {
                Some(cert) => {
                    write_artifact(path, &cert.to_text())?;
                    extra.push_str(&format!(
                        "certificate written to {path} (gap {:.2}%)\n",
                        cert.gap() * 100.0
                    ));
                }
                None => extra.push_str(
                    "no certificate emitted: the plan has no Eq. (3) prediction or \
                     overflows device memory\n",
                ),
            }
        }
    }
    extra.push_str(&sink.flush(&[
        ("command", "verify"),
        ("model", planner.model().name()),
        ("method", &plan.method.to_string()),
    ])?);
    let header = format!(
        "{warnings}verifying {} plan ({} stages, n={}) against {} on {}\n",
        plan.method,
        plan.stages.len(),
        plan.n_microbatches,
        planner.model().name(),
        planner.cluster().name()
    );
    if report.has_errors() {
        Err(ConfigError::Rejected(format!(
            "plan failed verification\n{report}"
        )))
    } else {
        Ok(format!("{header}{extra}{report}"))
    }
}

/// `adapipe sim`: execute a saved plan in the event simulator and check
/// every device's dynamic high-water mark against its Eq. (1)-(2)
/// budget. Over-budget devices reject the plan (exit code 1) instead of
/// silently reporting an infeasible execution as fine.
pub fn sim(mut args: Args) -> Result<String, ConfigError> {
    let (plan, warnings) = read_plan(&mut args)?;
    let planner = build_planner(&mut args)?;
    args.finish()?;
    let eval = planner.evaluate(&plan);
    let budgets: Vec<adapipe_units::Bytes> = plan
        .stages
        .iter()
        .map(|s| planner.capacity().saturating_sub(s.memory.static_bytes))
        .collect();
    let mut out = format!(
        "{warnings}simulated {} plan ({} stages, n={}) on {}:\n  makespan = {:.3}s\n  bubble = {:.3}s ({:.1}% of device-time)\n  peak dynamic = {:.3} GB\n",
        plan.method,
        plan.stages.len(),
        plan.n_microbatches,
        planner.cluster().name(),
        eval.report.makespan.as_secs(),
        eval.report.total_bubble().as_secs(),
        eval.report.bubble_ratio() * 100.0,
        eval.report.max_peak_dynamic_bytes().get() as f64 / 1e9,
    );
    if let Err(e) = adapipe_sim::validate::check_budgets(&eval.report, &budgets) {
        return Err(ConfigError::Rejected(format!(
            "simulation exceeded the memory budget: {e}"
        )));
    }
    if !eval.fits {
        return Err(ConfigError::Rejected(format!(
            "plan does not fit device memory: peak {:.3} GB > capacity {:.3} GB",
            eval.max_peak_gb(),
            planner.capacity().get() as f64 / 1e9,
        )));
    }
    out.push_str("  budgets: ok on every device\n");
    Ok(out)
}

/// `adapipe chaos`: plan, inject a deterministic fault scenario, detect
/// the degradation, drive the recovery ladder (retry → replan →
/// full-recompute fallback) and verify the replanned artifact. The
/// machine-readable report is byte-stable for a given fault file +
/// seed. An unrecovered run (replan needed but rejected) exits 1.
pub fn chaos(mut args: Args) -> Result<String, ConfigError> {
    let faults_path = args.require("faults")?;
    let seed: Option<u64> = args.take_parsed("seed", "an unsigned integer")?;
    let steps: Option<usize> = args.take_parsed("steps", "a positive integer")?;
    let out_file = args.take("out");
    let replan_out = args.take("replan-out");
    let flight_out = args.take("flight-out");
    let sink = ObsSink::from_args(&mut args, false);
    let planner = build_planner(&mut args)?.with_recorder(sink.rec.clone());
    let parallel = config::parallel(&mut args)?;
    let train = config::workload(&mut args)?;
    args.finish()?;

    let text = std::fs::read_to_string(&faults_path)
        .map_err(|e| ConfigError::Domain(format!("cannot read {faults_path}: {e}")))?;
    let mut faults = FaultPlan::from_text(&text).map_err(|e| ConfigError::Domain(e.to_string()))?;
    if let Some(seed) = seed {
        let mut reseeded = FaultPlan::new(seed);
        for fault in faults.faults() {
            reseeded.push(fault.clone());
        }
        faults = reseeded;
    }
    let degraded = DegradedCluster::new(planner.cluster().clone(), faults);
    let mut cfg = ChaosConfig::default();
    if let Some(steps) = steps {
        cfg.steps = steps;
    }
    let outcome = planner
        .chaos_run(parallel, train, &degraded, &cfg)
        .map_err(|e| ConfigError::Domain(e.to_string()))?;

    let mut out = String::new();
    match &out_file {
        Some(path) => {
            write_artifact(path, &outcome.report)?;
            out.push_str(&format!("chaos report written to {path}\n"));
        }
        None => out.push_str(&outcome.report),
    }
    if let Some(path) = &replan_out {
        match &outcome.replan.plan {
            Some(plan) => {
                write_artifact(path, &adapipe::plan_io::to_text(plan))?;
                out.push_str(&format!("replanned plan written to {path}\n"));
            }
            None => out.push_str("no replan was needed; --replan-out skipped\n"),
        }
    }
    out.push_str(&sink.flush(&[
        ("command", "chaos"),
        ("model", planner.model().name()),
        ("seed", &degraded.plan().seed().to_string()),
    ])?);
    // Flight dump on an unrecovered run: the watchdog events replayed
    // into a flight ring plus the terminal failure, in the same
    // `adapipe-flight/v1` schema the serving daemon dumps on 503s.
    if let Some(path) = &flight_out {
        if outcome.accepted() {
            out.push_str("chaos run recovered; no flight dump written\n");
        } else {
            let flight = adapipe_obs::FlightRecorder::new(adapipe_obs::flight::DEFAULT_CAPACITY);
            for (step, events) in outcome.events.iter().enumerate() {
                for event in events {
                    flight.note(keys::FLIGHT_WATCHDOG, format!("step {step}: {event}"));
                }
            }
            flight.note(
                keys::FLIGHT_CHAOS_FAILURE,
                "recovery ladder exhausted: the replanned artifact was rejected",
            );
            let seed = degraded.plan().seed().to_string();
            let json = adapipe_obs::flight::flight_json(
                &flight.snapshot(),
                keys::FLIGHT_CHAOS_FAILURE,
                &[("command", "chaos"), ("seed", &seed)],
            );
            write_artifact(path, &json)?;
            out.push_str(&format!("flight dump written to {path}\n"));
        }
    }
    if !outcome.accepted() {
        return Err(ConfigError::Rejected(format!(
            "{out}chaos run was not recovered: the replanned artifact was rejected"
        )));
    }
    Ok(out)
}

/// `adapipe sweep`: one method across every (t, p, d) strategy.
pub fn sweep(mut args: Args) -> Result<String, ConfigError> {
    let method = config::method(&mut args)?;
    let sink = ObsSink::from_args(&mut args, true);
    let planner = build_planner(&mut args)?.with_recorder(sink.rec.clone());
    let devices = args
        .take_parsed("devices", "a positive integer")?
        .unwrap_or_else(|| planner.cluster().total_devices());
    let max_tensor = args
        .take_parsed("max-tensor", "a positive integer")?
        .unwrap_or_else(|| planner.cluster().devices_per_node());
    let train = config::workload(&mut args)?;
    args.finish()?;

    let outcomes = sweep_parallel_strategies(&planner, method, devices, train, max_tensor, 2);
    let mut out = format!(
        "{method} on {} devices of {}:\n",
        devices,
        planner.cluster().name()
    );
    for o in &outcomes {
        out.push_str(&format!("  {o}\n"));
    }
    match best_outcome(&outcomes) {
        Some(best) => out.push_str(&format!("best: {best}\n")),
        None => out.push_str("no memory-feasible strategy\n"),
    }
    if let Some(stats) = sink.iso_cache_stats() {
        out.push_str(&format!("iso-cache: {stats}\n"));
    }
    out.push_str(&sink.flush(&[
        ("command", "sweep"),
        ("model", planner.model().name()),
        ("method", &method.to_string()),
    ])?);
    Ok(out)
}

/// `adapipe compare`: every method at one strategy.
pub fn compare(mut args: Args) -> Result<String, ConfigError> {
    let sink = ObsSink::from_args(&mut args, true);
    let planner = build_planner(&mut args)?.with_recorder(sink.rec.clone());
    let parallel = config::parallel(&mut args)?;
    let train = config::workload(&mut args)?;
    args.finish()?;

    let mut out = format!(
        "{} at {parallel}, {train} on {}:\n",
        planner.model().name(),
        planner.cluster().name()
    );
    let mut best: Option<(Method, adapipe_units::MicroSecs)> = None;
    for method in Method::all() {
        let line = match planner.plan(method, parallel, train) {
            Ok(plan) => {
                let eval = planner.evaluate(&plan);
                if eval.fits && best.as_ref().is_none_or(|(_, t)| eval.iteration_time < *t) {
                    best = Some((method, eval.iteration_time));
                }
                if eval.fits {
                    let tp = planner.throughput(&plan, &eval);
                    format!("{eval}, {tp}")
                } else {
                    format!("{eval}")
                }
            }
            Err(e) => format!("{e}"),
        };
        out.push_str(&format!("  {method:<20} {line}\n"));
    }
    if let Some((method, t)) = best {
        out.push_str(&format!("fastest: {method} at {:.3}s\n", t.as_secs()));
    }
    if let Some(stats) = sink.iso_cache_stats() {
        out.push_str(&format!("iso-cache: {stats}\n"));
    }
    out.push_str(&sink.flush(&[("command", "compare"), ("model", planner.model().name())])?);
    Ok(out)
}

/// `adapipe serve`: run the planner daemon until a client posts
/// `/admin/shutdown`. Prints the bound address immediately (flushed)
/// so `--port 0` callers can discover the ephemeral port, then blocks
/// draining requests.
pub fn serve(mut args: Args) -> Result<String, ConfigError> {
    let host = args.take("host").unwrap_or_else(|| "127.0.0.1".to_string());
    let port: u16 = args.take_parsed("port", "a port number")?.unwrap_or(8080);
    let workers: usize = args
        .take_parsed("workers", "a positive integer")?
        .unwrap_or(4);
    let cache_capacity: usize = args
        .take_parsed("cache-capacity", "a positive integer")?
        .unwrap_or(1024);
    let queue_depth: usize = args
        .take_parsed("queue-depth", "a positive integer")?
        .unwrap_or(64);
    let deadline_ms: Option<f64> = args.take_parsed("deadline-ms", "milliseconds")?;
    let plan_delay_ms: Option<u64> =
        args.take_parsed("plan-delay-ms", "milliseconds (testing aid)")?;
    let trace_capacity: Option<usize> = args.take_parsed("trace-capacity", "a positive integer")?;
    let flight_dir = args.take("flight-dir").map(std::path::PathBuf::from);
    args.finish()?;

    let defaults = ServeConfig::default();
    let cfg = ServeConfig {
        host: host.clone(),
        port,
        workers,
        cache_capacity,
        queue_depth,
        default_deadline: deadline_ms.map(|ms| MicroSecs::new(ms * 1e3)),
        plan_delay: plan_delay_ms.map(Duration::from_millis),
        trace_capacity: trace_capacity.unwrap_or(defaults.trace_capacity),
        flight_dir,
        ..defaults
    };
    let server = Server::bind(cfg, Recorder::new())
        .map_err(|e| ConfigError::Domain(format!("cannot bind {host}:{port}: {e}")))?;
    println!("adapipe-serve listening on http://{}", server.addr());
    println!("  workers={workers} cache-capacity={cache_capacity} queue-depth={queue_depth}");
    use std::io::Write as _;
    // lint: allow(swallowed-result): stdout flush failure cannot be reported anywhere better
    let _flushed = std::io::stdout().flush();
    let summary = server.join();
    Ok(format!(
        "drained: {} requests served ({} cache hits, {} misses, {} rejected)\n",
        summary.requests, summary.cache_hits, summary.cache_misses, summary.rejected
    ))
}

/// Builds a [`PlanRequest`] body from `query` flags. Only
/// `--tensor/--pipeline/--seq/--global-batch` are required; everything
/// else keeps the same defaults the daemon would materialize.
fn plan_request_from_args(args: &mut Args) -> Result<PlanRequest, ConfigError> {
    let tensor = args.require_parsed("tensor", "a positive integer")?;
    let pipeline = args.require_parsed("pipeline", "a positive integer")?;
    let seq_len = args.require_parsed("seq", "a positive integer")?;
    let global_batch = args.require_parsed("global-batch", "a positive integer")?;
    let mut req = PlanRequest::new(tensor, pipeline, seq_len, global_batch);
    if let Some(model) = args.take("model") {
        req.model = model;
    }
    if let Some(cluster) = args.take("cluster") {
        req.nodes = adapipe_serve::names::default_nodes(&cluster).ok_or_else(|| {
            ConfigError::BadChoice {
                flag: "cluster",
                value: cluster.clone(),
                choices: adapipe_serve::names::CLUSTER_CHOICES,
            }
        })?;
        req.cluster = cluster;
    }
    if let Some(nodes) = args.take_parsed("nodes", "a positive integer")? {
        req.nodes = nodes;
    }
    if let Some(data) = args.take_parsed("data", "a positive integer")? {
        req.data = data;
    }
    if let Some(mb) = args.take_parsed("micro-batch", "a positive integer")? {
        req.micro_batch = mb;
    }
    if let Some(method) = args.take("method") {
        req.method = method;
    }
    if let Some(headroom) = args.take_parsed("headroom", "a fraction in (0, 1]")? {
        req.headroom = headroom;
    }
    if let Some(flag) = args.take("fp32-grads") {
        req.fp32_grads = match flag.as_str() {
            "true" => true,
            "false" => false,
            other => {
                return Err(ConfigError::BadChoice {
                    flag: "fp32-grads",
                    value: other.to_string(),
                    choices: "true, false",
                })
            }
        };
    }
    if let Some(ms) = args.take_parsed::<f64>("deadline-ms", "milliseconds")? {
        req.deadline = Some(MicroSecs::new(ms * 1e3));
    }
    Ok(req)
}

/// `adapipe query`: drive a running daemon. One of four modes:
/// `--shutdown true` (graceful drain), `--get PATH` (raw GET, e.g.
/// `/metrics`), `--digest D` (cache lookup), `--body-file FILE` (POST
/// a raw request body), or the regular plan flags (POST a canonical
/// request). A 2xx response exits 0; 4xx/5xx exit 1; network errors
/// exit 2.
pub fn query(mut args: Args) -> Result<String, ConfigError> {
    let addr = args.require("addr")?;
    let out_file = args.take("out");
    let shutdown = args.take("shutdown");
    let get_path = args.take("get");
    let digest = args.take("digest");
    let body_file = args.take("body-file");

    let network = |e: std::io::Error| ConfigError::Domain(format!("cannot reach {addr}: {e}"));
    let resp = if let Some(flag) = shutdown {
        if flag != "true" {
            return Err(ConfigError::BadChoice {
                flag: "shutdown",
                value: flag,
                choices: "true",
            });
        }
        args.finish()?;
        client::request(&addr, "POST", "/admin/shutdown", None).map_err(network)?
    } else if let Some(path) = get_path {
        args.finish()?;
        client::get(&addr, &path).map_err(network)?
    } else if let Some(digest) = digest {
        args.finish()?;
        client::get(&addr, &format!("/v1/plan/{digest}")).map_err(network)?
    } else if let Some(path) = body_file {
        args.finish()?;
        let body = std::fs::read_to_string(&path)
            .map_err(|e| ConfigError::Domain(format!("cannot read {path}: {e}")))?;
        client::post_plan(&addr, &body).map_err(network)?
    } else {
        let req = plan_request_from_args(&mut args)?;
        args.finish()?;
        client::post_plan(&addr, &req.to_wire_text()).map_err(network)?
    };

    let mut out = String::new();
    if let Some(path) = &out_file {
        write_artifact(path, &resp.body)?;
        out.push_str(&format!("status {}", resp.status));
        if let Some(cache) = resp.header("x-adapipe-cache") {
            out.push_str(&format!(", cache {cache}"));
        }
        if let Some(trace) = resp.header("x-adapipe-trace") {
            out.push_str(&format!(", trace {trace}"));
        }
        if let Some(digest) = resp.header("x-adapipe-digest") {
            out.push_str(&format!(", digest {digest}"));
        }
        out.push_str(&format!("; body written to {path}\n"));
    } else {
        out.push_str(&resp.body);
        if !resp.body.ends_with('\n') {
            out.push('\n');
        }
    }
    if resp.is_success() {
        Ok(out)
    } else {
        Err(ConfigError::Rejected(format!(
            "server answered {}: {}",
            resp.status,
            resp.body.trim_end()
        )))
    }
}

/// `adapipe report`: renders collected metrics/trace/flight artifacts
/// into one self-contained HTML file (inline SVG, no JavaScript).
/// Inputs come from `--dir DIR` (every `*.json` under it, classified
/// by shape; unknown shapes are skipped with a note) and/or `--files
/// a.json,b.json`.
pub fn report(mut args: Args) -> Result<String, ConfigError> {
    let out_path = args.require("out")?;
    let dir = args.take("dir");
    let files_csv = args.take("files");
    let title = args
        .take("title")
        .unwrap_or_else(|| "AdaPipe observability report".to_string());
    args.finish()?;

    let mut paths: Vec<std::path::PathBuf> = Vec::new();
    if let Some(dir) = &dir {
        let entries = std::fs::read_dir(dir)
            .map_err(|e| ConfigError::Domain(format!("cannot read --dir {dir}: {e}")))?;
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("json") {
                paths.push(path);
            }
        }
        paths.sort();
    }
    if let Some(csv) = &files_csv {
        paths.extend(csv.split(',').filter(|s| !s.is_empty()).map(Into::into));
    }
    if paths.is_empty() {
        return Err(ConfigError::Domain(
            "report needs --dir DIR and/or --files a.json,b.json".to_string(),
        ));
    }

    let mut out = String::new();
    let mut artifacts = Vec::new();
    for path in &paths {
        let display = path.display().to_string();
        let text = std::fs::read_to_string(path)
            .map_err(|e| ConfigError::Domain(format!("cannot read {display}: {e}")))?;
        let doc = match adapipe_obs::json::parse(&text) {
            Ok(doc) => doc,
            Err(e) => {
                out.push_str(&format!("skipped {display}: {e}\n"));
                continue;
            }
        };
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or(&display);
        match crate::report_html::classify(name, doc) {
            Some(a) => artifacts.push(a),
            None => out.push_str(&format!("skipped {display}: not a known artifact schema\n")),
        }
    }
    let html = crate::report_html::render(&title, &artifacts);
    write_artifact(&out_path, &html)?;
    out.push_str(&format!(
        "report written to {out_path} ({} artifact(s) rendered)\n",
        artifacts.len()
    ));
    Ok(out)
}

/// `adapipe models`: list presets.
pub fn models(args: Args) -> Result<String, ConfigError> {
    args.finish()?;
    let mut out = String::from("available model presets:\n");
    for spec in [
        adapipe_model::presets::gpt3_175b(),
        adapipe_model::presets::llama2_70b(),
        adapipe_model::presets::gpt2_small(),
        adapipe_model::presets::bert_large(),
        adapipe_model::presets::tiny_gpt(),
    ] {
        out.push_str(&format!(
            "  {spec} — {:.1}B params\n",
            spec.total_params() as f64 / 1e9
        ));
    }
    Ok(out)
}

/// Usage text.
pub const USAGE: &str = "\
adapipe — plan pipeline-parallel training with adaptive recomputation & partitioning

USAGE:
  adapipe plan    --tensor T --pipeline P [--data D] --seq S --global-batch G
                  [--model M] [--cluster a|b] [--nodes N] [--method NAME]
                  [--headroom F] [--fp32-grads true|false] [--micro-batch B]
                  [--metrics-out FILE] [--chrome-trace FILE]
  adapipe sweep   --seq S --global-batch G [--devices N] [--max-tensor T]
                  [--model M] [--cluster a|b] [--method NAME]
                  [--metrics-out FILE] [--chrome-trace FILE] ...
  adapipe compare --tensor T --pipeline P [--data D] --seq S --global-batch G
                  [--metrics-out FILE] [--chrome-trace FILE] ...
  adapipe show    --plan FILE [--model M] [--cluster a|b] [--nodes N]
  adapipe verify  --plan FILE [--quick true] [--optimality true] [--epsilon F]
                  [--oracle-seed N] [--oracle-iters N] [--certificate-out FILE]
                  [--metrics-out FILE] [--model M] [--cluster a|b] [--nodes N]
  adapipe sim     --plan FILE [--model M] [--cluster a|b] [--nodes N]
  adapipe trace   --plan FILE [--out trace.json] [--model M] [--cluster a|b]
  adapipe chaos   --faults FILE --tensor T --pipeline P --seq S --global-batch G
                  [--seed N] [--steps N] [--out report.txt] [--replan-out plan.txt]
                  [--flight-out flight.json] [--model M] [--cluster a|b] [--nodes N]
  adapipe serve   [--host H] [--port P] [--workers N] [--cache-capacity N]
                  [--queue-depth N] [--deadline-ms MS] [--trace-capacity N]
                  [--flight-dir DIR]
  adapipe query   --addr HOST:PORT (plan flags | --digest D | --get PATH |
                  --body-file FILE | --shutdown true) [--out FILE]
  adapipe report  --out report.html [--dir DIR] [--files a.json,b.json]
                  [--title TEXT]
  adapipe models

VERIFY:
  statically checks a saved plan against the paper's invariants — memory
  budgets under the chosen save/recompute sets (Eq. (1)-(2)), contiguous
  full-cover partitioning, an acyclic deadlock-free task DAG, Eq. (3)
  breakdown consistency and iso-cache soundness — without executing it;
  exits 1 if any error-severity finding is reported; --optimality true
  additionally (a) certifies the plan against an analytic lower bound on
  any memory-feasible Eq. (3) plan (written as an adapipe-certificate v1
  artifact by --certificate-out; an AdaPipe plan more than --epsilon
  above the bound is an optimality-gap error, a baseline's gap is only a
  warning), and (b) cross-checks Algorithm 1 and the recomputation
  knapsack against brute-force oracles on pinned grids plus
  --oracle-iters seeded random instances (--oracle-seed), shrinking any
  disagreement to a minimal reproducer; see docs/verification.md

SIM:
  executes a saved plan in the event simulator and checks every device's
  dynamic-memory high-water mark against its Eq. (1)-(2) budget; an
  over-budget device rejects the plan with exit code 1

CHAOS:
  plans, injects the deterministic fault scenario in --faults FILE
  (straggler / link / mem-shrink / stall lines; see docs/robustness.md),
  detects the degradation with the watchdog, drives the recovery ladder
  (bounded retry -> Algorithm 1 replan -> full-recompute fallback) and
  verifies the replanned artifact; the report is byte-stable for a given
  fault file + seed (--seed overrides the file's seed); exits 1 when a
  needed replan is rejected

SERVE:
  runs the planner as an HTTP/1.1 daemon (see docs/serving.md): POST
  /v1/plan canonicalizes the request, digests it (SHA-256) and answers
  from a content-addressed LRU plan cache; misses are planned on a
  bounded worker pool with explicit backpressure (503 + Retry-After
  when the queue is full) and every plan is verified before it is
  served; POST /admin/shutdown drains in-flight work and exits 0; every
  POST /v1/plan response carries an X-Adapipe-Trace id whose span
  timeline is retrievable via GET /v1/trace/{id}; --flight-dir DIR
  makes the daemon dump its flight-recorder ring (adapipe-flight/v1
  JSON) there on backpressure, deadline violations and watchdog
  events, and POST /admin/dump returns the same dump on demand

QUERY:
  drives a running daemon: plan flags POST a canonical request,
  --digest D looks up a cached plan by content address, --get PATH
  fetches e.g. /metrics, --body-file FILE posts a raw body and
  --shutdown true drains the daemon; a 2xx response exits 0, a 4xx/5xx
  response exits 1, a network failure exits 2

REPORT:
  renders collected observability artifacts into one self-contained
  HTML file (inline SVG charts, no JavaScript): serve latency
  histograms and the planner phase breakdown from adapipe-obs/v1
  metrics reports, schedule timelines from Chrome-trace dumps, bench
  mean-latency bars from BENCH_*.json summaries and flight-recorder
  incident tables; inputs are classified by shape, unknown files are
  skipped with a note (see docs/observability.md)

EXIT CODES:
  0  success: the command ran and the artifact under test was accepted
  1  rejected: the artifact failed (verification errors, over-budget
     simulation, unrecovered chaos run, a 4xx/5xx daemon response, an
     unwritable output artifact)
  2  internal error: bad flags, unreadable files, invalid configurations

OBSERVABILITY:
  --metrics-out FILE   write the search engine's metrics (knapsack DP
                       effort, Algorithm 1 states, iso-cache hit rate,
                       simulator events) as a JSON report
  --chrome-trace FILE  write the planner's spans in Chrome Trace Event
                       Format (load in chrome://tracing or Perfetto)

MODELS:  gpt3 (default), llama2, gpt2, bert, tiny
METHODS: adapipe (default), even, dapple-full, dapple-non, dapple-selective,
         chimera-full, chimera-non, chimerad-full, chimerad-non,
         gpipe-full, gpipe-non, interleaved-full, interleaved-non
";

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::parse(list.iter().map(ToString::to_string)).unwrap()
    }

    #[test]
    fn plan_produces_a_stage_dump() {
        let out = plan(args(&[
            "--model",
            "gpt2",
            "--cluster",
            "a",
            "--nodes",
            "1",
            "--tensor",
            "2",
            "--pipeline",
            "4",
            "--seq",
            "1024",
            "--global-batch",
            "32",
        ]))
        .unwrap();
        assert!(out.contains("stage 0"), "{out}");
        assert!(out.contains("evaluation"), "{out}");
    }

    #[test]
    fn plan_reports_oom_gracefully() {
        let out = plan(args(&[
            "--model",
            "gpt3",
            "--cluster",
            "b",
            "--nodes",
            "1",
            "--tensor",
            "1",
            "--pipeline",
            "8",
            "--seq",
            "4096",
            "--global-batch",
            "64",
        ]))
        .unwrap();
        assert!(out.contains("cannot run"), "{out}");
    }

    #[test]
    fn sweep_lists_strategies_and_a_best() {
        let out = sweep(args(&[
            "--model",
            "gpt2",
            "--cluster",
            "a",
            "--nodes",
            "1",
            "--seq",
            "512",
            "--global-batch",
            "32",
        ]))
        .unwrap();
        assert!(out.contains("best:"), "{out}");
    }

    #[test]
    fn compare_covers_every_method() {
        let out = compare(args(&[
            "--model",
            "gpt2",
            "--cluster",
            "a",
            "--nodes",
            "1",
            "--tensor",
            "2",
            "--pipeline",
            "4",
            "--seq",
            "512",
            "--global-batch",
            "32",
        ]))
        .unwrap();
        for m in Method::all() {
            assert!(out.contains(&m.to_string()), "missing {m}: {out}");
        }
        assert!(out.contains("fastest:"), "{out}");
    }

    #[test]
    fn plan_show_trace_round_trip_via_files() {
        let dir = std::env::temp_dir();
        let plan_path = dir.join("adapipe-cli-test-plan.txt");
        let trace_path = dir.join("adapipe-cli-test-trace.json");
        let plan_path = plan_path.to_str().unwrap();
        let trace_path = trace_path.to_str().unwrap();

        let out = plan(args(&[
            "--model",
            "gpt2",
            "--cluster",
            "a",
            "--nodes",
            "1",
            "--tensor",
            "2",
            "--pipeline",
            "4",
            "--seq",
            "512",
            "--global-batch",
            "16",
            "--out",
            plan_path,
        ]))
        .unwrap();
        assert!(out.contains("plan written"), "{out}");

        let shown = show(args(&[
            "--plan",
            plan_path,
            "--model",
            "gpt2",
            "--cluster",
            "a",
            "--nodes",
            "1",
        ]))
        .unwrap();
        assert!(shown.contains("stage 0"), "{shown}");

        let traced = trace(args(&[
            "--plan",
            plan_path,
            "--model",
            "gpt2",
            "--cluster",
            "a",
            "--nodes",
            "1",
            "--out",
            trace_path,
        ]))
        .unwrap();
        assert!(traced.contains("events written"), "{traced}");
        let json = std::fs::read_to_string(trace_path).unwrap();
        assert!(json.starts_with('['));
        let _ = std::fs::remove_file(plan_path);
        let _ = std::fs::remove_file(trace_path);
    }

    #[test]
    fn verify_accepts_saved_plans_and_rejects_corrupted_ones() {
        let dir = std::env::temp_dir();
        let plan_path = dir.join("adapipe-cli-test-verify-plan.txt");
        let bad_path = dir.join("adapipe-cli-test-verify-bad.txt");
        let plan_path = plan_path.to_str().unwrap();
        let bad_path = bad_path.to_str().unwrap();

        let common = [
            "--model",
            "gpt2",
            "--cluster",
            "a",
            "--nodes",
            "1",
            "--tensor",
            "2",
            "--pipeline",
            "4",
            "--seq",
            "512",
            "--global-batch",
            "16",
        ];
        let mut plan_args: Vec<&str> = common.to_vec();
        plan_args.extend(["--method", "adapipe", "--out", plan_path]);
        let _ = plan(args(&plan_args)).unwrap();

        let ok = verify(args(&[
            "--plan",
            plan_path,
            "--model",
            "gpt2",
            "--cluster",
            "a",
            "--nodes",
            "1",
        ]))
        .unwrap();
        assert!(ok.contains("ok: all invariants hold"), "{ok}");

        // Corrupt one stage's backward time: the stored cost no longer
        // matches the strategy (stale-cost class) and Eq. (3) drifts.
        let text = std::fs::read_to_string(plan_path).unwrap();
        let line = text
            .lines()
            .find(|l| l.trim_start().starts_with("time_b ="))
            .unwrap();
        let corrupted = text.replacen(line, "  time_b = 999.0", 1);
        std::fs::write(bad_path, corrupted).unwrap();
        let err = verify(args(&[
            "--plan",
            bad_path,
            "--model",
            "gpt2",
            "--cluster",
            "a",
            "--nodes",
            "1",
        ]))
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("failed verification"), "{msg}");
        assert!(msg.contains("cost-drift"), "{msg}");
        let _ = std::fs::remove_file(plan_path);
        let _ = std::fs::remove_file(bad_path);
    }

    #[test]
    fn plan_writes_metrics_and_chrome_trace() {
        let dir = std::env::temp_dir();
        let metrics_path = dir.join("adapipe-cli-test-metrics.json");
        let trace_path = dir.join("adapipe-cli-test-obs-trace.json");
        let metrics_path = metrics_path.to_str().unwrap();
        let trace_path = trace_path.to_str().unwrap();

        let out = plan(args(&[
            "--model",
            "gpt2",
            "--cluster",
            "a",
            "--nodes",
            "1",
            "--tensor",
            "2",
            "--pipeline",
            "4",
            "--seq",
            "512",
            "--global-batch",
            "16",
            "--metrics-out",
            metrics_path,
            "--chrome-trace",
            trace_path,
        ]))
        .unwrap();
        assert!(out.contains("metrics written"), "{out}");
        assert!(out.contains("chrome trace written"), "{out}");

        let metrics = std::fs::read_to_string(metrics_path).unwrap();
        let v = adapipe_obs::json::parse(&metrics).expect("valid metrics JSON");
        let counters = v.get("counters").expect("counters object");
        // The acceptance set: knapsack DP effort, Algorithm 1 leaf
        // evaluations, iso-cache traffic, simulator events.
        for key in [
            "recompute.knapsack.calls",
            "partition.leaf_evals",
            "partition.alg1.states",
            "partition.iso_cache.misses",
            "sim.events",
        ] {
            assert!(
                counters.get(key).and_then(|c| c.as_f64()).unwrap_or(0.0) > 0.0,
                "missing counter {key}: {metrics}"
            );
        }
        assert!(
            v.get("histograms")
                .and_then(|h| h.get("recompute.knapsack.us"))
                .is_some(),
            "knapsack timing histogram missing: {metrics}"
        );
        assert!(
            v.get("gauges")
                .and_then(|g| g.get("partition.iso_cache.hit_rate"))
                .is_some(),
            "iso-cache hit rate missing: {metrics}"
        );

        let trace = std::fs::read_to_string(trace_path).unwrap();
        let events = adapipe_obs::json::parse(&trace).expect("valid trace JSON");
        let events = events.as_array().expect("trace is an array");
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
            .collect();
        for span in ["plan", "plan.profile", "plan.partition", "sim.run"] {
            assert!(names.contains(&span), "span {span} missing: {names:?}");
        }
        let _ = std::fs::remove_file(metrics_path);
        let _ = std::fs::remove_file(trace_path);
    }

    #[test]
    fn compare_reports_iso_cache_hit_rate() {
        let out = compare(args(&[
            "--model",
            "gpt2",
            "--cluster",
            "a",
            "--nodes",
            "1",
            "--tensor",
            "2",
            "--pipeline",
            "4",
            "--seq",
            "512",
            "--global-batch",
            "32",
        ]))
        .unwrap();
        assert!(out.contains("iso-cache:"), "{out}");
        let hits: u64 = out
            .split("iso-cache: ")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|n| n.parse().ok())
            .unwrap();
        assert!(hits > 0, "expected nonzero iso-cache hits: {out}");
    }

    #[test]
    fn show_rejects_missing_file() {
        let e = show(args(&["--plan", "/nonexistent/adapipe-plan.txt"])).unwrap_err();
        assert!(e.to_string().contains("cannot read"), "{e}");
    }

    #[test]
    fn models_lists_presets() {
        let out = models(args(&[])).unwrap();
        assert!(out.contains("gpt3-175b"));
        assert!(out.contains("llama2-70b"));
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let e = plan(args(&["--frobnicate", "1"])).unwrap_err();
        assert!(e.to_string().contains("tensor") || e.to_string().contains("frobnicate"));
    }

    #[test]
    fn bad_headroom_is_rejected() {
        let e = plan(args(&[
            "--tensor",
            "2",
            "--pipeline",
            "4",
            "--seq",
            "512",
            "--global-batch",
            "32",
            "--headroom",
            "1.5",
        ]))
        .unwrap_err();
        assert!(e.to_string().contains("headroom"), "{e}");
    }
}
