//! Discrete-event pipeline-schedule simulator.
//!
//! This crate is the stand-in for the paper's clusters: it *executes*
//! pipeline schedules — GPipe, 1F1B (DAPPLE), Chimera and Chimera with
//! forward doubling — against per-stage forward/backward durations and
//! activation sizes, and reports exactly what the paper measures on real
//! hardware: iteration time, per-device peak memory, bubble time and the
//! full timeline (Figures 1, 2, 5–9).
//!
//! Two execution disciplines are supported:
//!
//! * **Fixed order** — each device runs its operation queue strictly in
//!   order, blocking until the head's dependencies are met. This is how
//!   1F1B and GPipe engines behave, and it lets us check the simulator
//!   against the closed-form cost model of `adapipe-partition` (they must
//!   agree to float precision).
//! * **Greedy priority** — each idle device runs the ready task with the
//!   best priority. Used for the bidirectional Chimera schedules, whose
//!   interleaving emerges from dependencies rather than a fixed script.
//!
//! # Example
//!
//! ```
//! use adapipe_sim::{schedule, simulate, StageExec};
//! use adapipe_units::{Bytes, MicroSecs};
//!
//! let stages = vec![
//!     StageExec {
//!         time_f: MicroSecs::new(1.0),
//!         time_b: MicroSecs::new(2.0),
//!         saved_bytes: Bytes::new(100),
//!         buffer_bytes: Bytes::new(10),
//!     };
//!     4
//! ];
//! let graph = schedule::one_f_one_b(&stages, 8, MicroSecs::ZERO);
//! let report = simulate(&graph);
//! // Balanced 1F1B: (n + p - 1)(f + b) = 11 * 3.
//! assert!((report.makespan - MicroSecs::new(33.0)).abs() < MicroSecs::new(1e-9));
//! ```

#![forbid(unsafe_code)]

mod engine;
mod error;
pub mod render;
mod report;
pub mod schedule;
mod task;
pub mod validate;

pub use engine::{simulate, simulate_traced, try_simulate, try_simulate_traced};
pub use error::SimError;
pub use report::{DeviceReport, MemorySample, SimReport, TimelineEntry};
pub use task::{Discipline, OpKind, StageExec, TaskGraph, TaskMeta};
