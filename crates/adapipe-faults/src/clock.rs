//! The logical fault clock: training steps, never wall time.
//!
//! Every fault-scheduling decision is a pure function of the plan seed
//! and the logical step counter, so a chaos run replays identically no
//! matter how fast the host machine is.

use crate::plan::{Fault, FaultPlan};
use adapipe_units::MicroSecs;

/// Mixes `x` into a well-distributed 64-bit value (splitmix64).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A transient stall due to fire at the clock's current step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingStall {
    /// Index of the fault within the plan.
    pub fault: usize,
    /// Device the stall hits.
    pub device: usize,
    /// Micro-batch the stall hits.
    pub micro_batch: usize,
}

/// Logical clock driving a [`FaultPlan`] through a run: counts training
/// steps, decides *when* each transient stall fires (a seeded draw over
/// the step horizon), and enforces one-shot semantics.
#[derive(Debug, Clone)]
pub struct FaultClock {
    plan: FaultPlan,
    step: usize,
    fired: Vec<bool>,
}

impl FaultClock {
    /// A clock at step 0 for `plan`.
    #[must_use]
    pub fn new(plan: &FaultPlan) -> Self {
        FaultClock {
            fired: vec![false; plan.faults().len()],
            plan: plan.clone(),
            step: 0,
        }
    }

    /// The current training step (0-based).
    #[must_use]
    pub fn step(&self) -> usize {
        self.step
    }

    /// Advances to the next training step.
    pub fn advance(&mut self) {
        self.step += 1;
    }

    /// The step fault `index` fires on, drawn deterministically from
    /// the plan seed over a `horizon`-step run. Stable across calls.
    #[must_use]
    pub fn fire_step(&self, index: usize, horizon: usize) -> usize {
        if horizon == 0 {
            return 0;
        }
        (splitmix64(self.plan.seed() ^ (index as u64)) % horizon as u64) as usize
    }

    /// Compute-speed factor of `device` at the current step.
    #[must_use]
    pub fn compute_factor(&self, device: usize) -> f64 {
        self.plan.compute_factor_at(device, self.step)
    }

    /// Transient stalls firing at the current step of a `horizon`-step
    /// run. Each stall fires exactly once across the whole run (the
    /// one-shot contract): a second call at the same step returns
    /// nothing new.
    pub fn take_stalls(&mut self, horizon: usize) -> Vec<(PendingStall, MicroSecs)> {
        let mut due = Vec::new();
        for (i, f) in self.plan.faults().iter().enumerate() {
            let Fault::TransientStall {
                device,
                micro_batch,
                delay,
            } = *f
            else {
                continue;
            };
            if self.fired[i] || self.fire_step(i, horizon) != self.step {
                continue;
            }
            self.fired[i] = true;
            due.push((
                PendingStall {
                    fault: i,
                    device,
                    micro_batch,
                },
                delay,
            ));
        }
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Fault;

    fn stall_plan(seed: u64) -> FaultPlan {
        FaultPlan::new(seed)
            .with(Fault::TransientStall {
                device: 1,
                micro_batch: 3,
                delay: MicroSecs::new(500.0),
            })
            .with(Fault::Straggler {
                device: 0,
                factor: 0.5,
                from_step: 2,
            })
    }

    #[test]
    fn stalls_fire_exactly_once_per_run() {
        let plan = stall_plan(9);
        let horizon = 4;
        let mut clock = FaultClock::new(&plan);
        let mut fired = 0;
        for _ in 0..horizon {
            let due = clock.take_stalls(horizon);
            fired += due.len();
            // Idempotent within a step.
            assert!(clock.take_stalls(horizon).is_empty());
            clock.advance();
        }
        assert_eq!(fired, 1, "one-shot stall must fire exactly once");
    }

    #[test]
    fn fire_step_is_deterministic_and_seed_sensitive() {
        let plan = stall_plan(9);
        let clock = FaultClock::new(&plan);
        assert_eq!(clock.fire_step(0, 100), clock.fire_step(0, 100));
        let other = FaultClock::new(&stall_plan(10));
        // Different seeds land on different steps for some horizon.
        let differs = (2..64).any(|h| clock.fire_step(0, h) != other.fire_step(0, h));
        assert!(differs, "seed must influence the fire step");
    }

    #[test]
    fn compute_factor_tracks_the_step() {
        let plan = stall_plan(9);
        let mut clock = FaultClock::new(&plan);
        assert!((clock.compute_factor(0) - 1.0).abs() < 1e-12);
        clock.advance();
        clock.advance();
        assert!((clock.compute_factor(0) - 0.5).abs() < 1e-12);
        assert!((clock.compute_factor(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_horizon_fires_at_step_zero() {
        let plan = stall_plan(9);
        let clock = FaultClock::new(&plan);
        assert_eq!(clock.fire_step(0, 0), 0);
    }
}
