//! Fixture: a justified waiver silences `stringly-metric`.

pub fn count(rec: &Recorder) {
    // lint: allow(stringly-metric): one-off probe name, deliberately outside the taxonomy
    rec.incr("probe.requests.total");
}
