//! Lower-bound certificates and the `verify --optimality` entry point.
//!
//! The brute-force oracle ([`crate::oracle`]) only reaches small
//! instances; real plans need a different argument. This module derives
//! an *analytic* lower bound on any memory-feasible Eq. (3) plan — an
//! LP-style relaxation of the search space — and packages it with the
//! plan's predicted cost as an [`adapipe-certificate
//! v1`](adapipe_check::certificate) artifact:
//!
//! * `W₀ ≥ Σ_ℓ f_ℓ` and `E₀ ≥ Σ_ℓ b_ℓ` — the warmup and ending
//!   recurrences each add at least the stage's own forward/backward
//!   time, whatever the partition.
//! * Forced recomputation: summing the per-stage §4.3 memory constraint
//!   over all stages relaxes to one *pooled* budget,
//!   `p·capacity − static(model) − pinned(model)` bytes for free
//!   activations; the fractional knapsack over that pool lower-bounds
//!   the recompute time every feasible plan must pay.
//! * `M₀ ≥ max(avg, worst layer)` — the steady-state bottleneck is at
//!   least the per-stage average of the total (forced-recompute-
//!   inclusive) work by pigeonhole, and at least `f + b` of any single
//!   layer, because some stage hosts it.
//!
//! The bound is deliberately loose (it ignores pipeline fill/drain
//! interactions), so [`check_certificate`] accepts gaps up to a
//! configurable `ε`; its real power is *soundness* — a certificate whose
//! bound exceeds the plan cost means the cost model itself is broken,
//! and the planner's debug build self-checks exactly that on every plan
//! it emits.

use crate::oracle::{self, OracleBounds};
use crate::plan::Plan;
use crate::planner::{Context, Planner};
use adapipe_check::{
    check_certificate, Certificate, CheckCode, CheckReport, Diagnostic, DEFAULT_EPSILON,
    DEFAULT_TOLERANCE,
};
use adapipe_model::LayerRange;
use adapipe_obs::keys;
use adapipe_units::{convert, Bytes, MicroSecs};
use std::cmp::Ordering;

/// Tuning for [`Planner::verify_optimality`].
#[derive(Debug, Clone, Copy)]
pub struct OptimalityOptions {
    /// Largest accepted `plan_cost / lower_bound − 1`. The default
    /// ([`DEFAULT_EPSILON`]) absorbs the relaxation's slack on the
    /// paper's configurations.
    pub epsilon: f64,
    /// Seed for the randomized counterexample search.
    pub search_seed: u64,
    /// Random instances to try in the counterexample search.
    pub search_iterations: usize,
}

impl Default for OptimalityOptions {
    fn default() -> Self {
        OptimalityOptions {
            epsilon: DEFAULT_EPSILON,
            search_seed: 0xada_0001,
            search_iterations: 200,
        }
    }
}

impl Planner {
    /// Derives the lower-bound certificate for `plan`, or `None` when no
    /// sound bound applies: the plan has no Eq. (3) prediction (GPipe,
    /// Chimera and interleaved schedules follow different cost models)
    /// or it overflows device memory (the bound quantifies over
    /// *memory-feasible* plans only, so an OOM baseline can legally
    /// undercut it).
    #[must_use]
    pub fn certificate(&self, plan: &Plan) -> Option<Certificate> {
        let plan_cost = plan.predicted_time()?;
        let capacity = self.capacity();
        let fits = plan.stages.iter().all(|s| {
            s.memory
                .static_bytes
                .saturating_add(s.memory.buffer_bytes)
                .saturating_add(s.memory.intermediate_bytes)
                .fits(capacity)
        });
        if !fits {
            return None;
        }
        let ctx = self.context(plan.parallel, plan.train);
        let p = plan.parallel.pipeline();
        let full = LayerRange::new(0, ctx.seq.len() - 1);
        let sum_f = ctx.table.forward_time(full);
        let sum_b = ctx.table.backward_time(full);
        let forced = forced_recompute_lb(&ctx, p, capacity);

        let avg = (sum_f + sum_b + forced) / convert::count_f64(p);
        let worst_layer = (0..ctx.seq.len())
            .map(|l| {
                let layer = LayerRange::new(l, l);
                ctx.table.forward_time(layer) + ctx.table.backward_time(layer)
            })
            .fold(MicroSecs::ZERO, MicroSecs::max);
        let bottleneck = avg.max(worst_layer);

        let mut cert = Certificate {
            layers: ctx.seq.len(),
            stages: p,
            micro_batches: plan.n_microbatches,
            warmup_lb: sum_f,
            ending_lb: sum_b,
            forced_recompute_lb: forced,
            bottleneck_lb: bottleneck,
            lower_bound: MicroSecs::ZERO,
            plan_cost,
        };
        cert.lower_bound = cert.recomposed_bound();
        Some(cert)
    }

    /// The full optimality-verification pass behind
    /// `adapipe verify --optimality`:
    ///
    /// 1. certifies `plan` against its analytic lower bound (an
    ///    [`CheckCode::OptimalityGap`] *error* only for `AdaPipe` plans —
    ///    a baseline far from optimal is the expected result, so its gap
    ///    is reported at warning severity);
    /// 2. sweeps the pinned synthetic grid and the `tiny-gpt` model grid
    ///    against the brute-force oracles;
    /// 3. runs the seeded counterexample search.
    ///
    /// Counters land on the planner's recorder under `oracle.*` and
    /// `certificate.*`.
    #[must_use]
    pub fn verify_optimality(&self, plan: &Plan, opts: &OptimalityOptions) -> CheckReport {
        let rec = self.recorder();
        let mut report = CheckReport::new();

        rec.incr(keys::CERT_CHECKS);
        match self.certificate(plan) {
            Some(cert) => {
                rec.observe(keys::CERT_GAP_PCT, cert.gap() * 100.0);
                let diags = check_certificate(&cert, opts.epsilon, DEFAULT_TOLERANCE);
                if !diags.is_empty() {
                    rec.incr(keys::CERT_FAILURES);
                }
                let adaptive = plan.method.is_adaptive();
                report.extend(diags.into_iter().map(|d| {
                    if d.code == CheckCode::OptimalityGap && !adaptive {
                        Diagnostic::warning(d.code, d.stage, d.message)
                    } else {
                        d
                    }
                }));
            }
            None => report.push(Diagnostic::warning(
                CheckCode::CertificateInvalid,
                None,
                format!(
                    "{} plan is not certifiable (no Eq. (3) prediction, or the plan \
                     overflows device memory)",
                    plan.method
                ),
            )),
        }

        report.extend(oracle::check_grid_agreement(rec));
        report.extend(oracle::check_model_grid(rec));
        for cx in oracle::search_counterexamples(
            opts.search_seed,
            opts.search_iterations,
            &OracleBounds::default(),
            rec,
        ) {
            report.push(Diagnostic::error(
                CheckCode::OptimalityGap,
                None,
                format!("counterexample search (seed {}): {cx}", opts.search_seed),
            ));
        }
        report
    }
}

/// Lower bound on the recomputation time *any* memory-feasible plan must
/// pay: the fractional knapsack over the pooled activation budget.
/// Ignoring live-micro-batch multiplicity (`live ≥ 1`) and recompute
/// buffers only enlarges the pool, keeping the bound sound.
fn forced_recompute_lb(ctx: &Context, p: usize, capacity: Bytes) -> MicroSecs {
    let full = LayerRange::new(0, ctx.seq.len() - 1);
    let pool =
        capacity.as_f64() * convert::count_f64(p) - ctx.mem.static_bytes(&ctx.seq, full).as_f64();
    let budget = (pool - ctx.table.saved_bytes_pinned(full).as_f64()).max(0.0);
    let mut free: Vec<(f64, f64)> = ctx
        .table
        .all_units()
        .filter(|u| !u.is_pinned() && u.mem_saved > Bytes::ZERO)
        .map(|u| (u.time_f.as_micros(), u.mem_saved.as_f64()))
        .collect();
    let total_value: f64 = free.iter().map(|(v, _)| v).sum();
    // Densest-first fractional fill is the exact optimum of the LP
    // relaxation; `v₁/w₁ > v₂/w₂ ⟺ v₁·w₂ > v₂·w₁` avoids the division.
    free.sort_by(|a, b| {
        (b.0 * a.1)
            .partial_cmp(&(a.0 * b.1))
            .unwrap_or(Ordering::Equal)
    });
    let mut remaining = budget;
    let mut saved_value = 0.0;
    for (v, w) in free {
        if remaining <= 0.0 {
            break;
        }
        let frac = (remaining / w).min(1.0);
        saved_value += v * frac;
        remaining -= w * frac;
    }
    MicroSecs::new((total_value - saved_value).max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::PlanError;
    use crate::method::Method;
    use adapipe_hw::presets as hw;
    use adapipe_model::{presets, ParallelConfig, TrainConfig};
    use adapipe_obs::Recorder;

    fn small() -> Result<(Planner, ParallelConfig, TrainConfig), PlanError> {
        Ok((
            Planner::new(presets::gpt2_small(), hw::cluster_a()),
            ParallelConfig::new(2, 4, 1)?,
            TrainConfig::new(1, 1024, 32)?,
        ))
    }

    #[test]
    fn adapipe_plan_is_certified_within_epsilon() -> Result<(), PlanError> {
        let (planner, parallel, train) = small()?;
        let plan = planner.plan(Method::AdaPipe, parallel, train)?;
        let cert = planner.certificate(&plan).expect("certifiable");
        assert!(cert.lower_bound > MicroSecs::ZERO);
        assert!(cert.lower_bound <= cert.plan_cost);
        let diags = check_certificate(&cert, DEFAULT_EPSILON, DEFAULT_TOLERANCE);
        assert!(diags.is_empty(), "gap {:.3}: {diags:?}", cert.gap());
        Ok(())
    }

    #[test]
    fn certificate_round_trips_through_text() -> Result<(), PlanError> {
        let (planner, parallel, train) = small()?;
        let plan = planner.plan(Method::AdaPipe, parallel, train)?;
        let cert = planner.certificate(&plan).expect("certifiable");
        let parsed = Certificate::from_text(&cert.to_text()).expect("parse");
        assert_eq!(cert, parsed);
        Ok(())
    }

    #[test]
    fn bound_is_sound_for_every_certifiable_method() -> Result<(), PlanError> {
        let (planner, parallel, train) = small()?;
        for m in Method::all() {
            let Ok(plan) = planner.plan(m, parallel, train) else {
                continue;
            };
            let Some(cert) = planner.certificate(&plan) else {
                continue;
            };
            assert!(
                cert.lower_bound <= cert.plan_cost * (1.0 + 1e-9),
                "{m}: bound {} exceeds cost {}",
                cert.lower_bound,
                cert.plan_cost
            );
        }
        Ok(())
    }

    #[test]
    fn uncertifiable_methods_return_none() -> Result<(), PlanError> {
        let (planner, parallel, train) = small()?;
        let plan = planner.plan(Method::GpipeFull, parallel, train)?;
        assert!(planner.certificate(&plan).is_none());
        Ok(())
    }

    #[test]
    fn verify_optimality_passes_on_an_adapipe_plan() -> Result<(), PlanError> {
        let (planner, parallel, train) = small()?;
        let planner = planner.with_recorder(Recorder::new());
        let plan = planner.plan(Method::AdaPipe, parallel, train)?;
        let opts = OptimalityOptions {
            search_iterations: 8,
            ..OptimalityOptions::default()
        };
        let report = planner.verify_optimality(&plan, &opts);
        assert!(!report.has_errors(), "{report}");
        let snap = planner.recorder().snapshot();
        assert_eq!(snap.counters.get(keys::CERT_CHECKS).copied(), Some(1));
        assert!(
            snap.counters
                .get(keys::ORACLE_INSTANCES)
                .copied()
                .unwrap_or(0)
                > 0
        );
        Ok(())
    }

    #[test]
    fn baseline_gap_is_a_warning_not_an_error() -> Result<(), PlanError> {
        let (planner, parallel, train) = small()?;
        let plan = planner.plan(Method::DappleFull, parallel, train)?;
        let opts = OptimalityOptions {
            epsilon: 0.0, // force a gap finding even on a tight plan
            search_iterations: 0,
            ..OptimalityOptions::default()
        };
        let report = planner.verify_optimality(&plan, &opts);
        let gaps: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == CheckCode::OptimalityGap)
            .collect();
        assert!(!gaps.is_empty(), "expected a gap at epsilon 0");
        assert!(
            gaps.iter()
                .all(|d| d.severity == adapipe_check::Severity::Warning),
            "{report}"
        );
        Ok(())
    }

    #[test]
    fn forced_recompute_bound_tightens_with_capacity() -> Result<(), PlanError> {
        let (planner, parallel, train) = small()?;
        let ctx = planner.context(parallel, train);
        let full = LayerRange::new(0, ctx.seq.len() - 1);
        let static_b = ctx.mem.static_bytes(&ctx.seq, full).as_f64();
        let pinned = ctx.table.saved_bytes_pinned(full).as_f64();
        let free = ctx.table.saved_bytes_all(full).as_f64() - pinned;
        // Pool holds statics, pinned tensors and a quarter of the free
        // activations: three quarters of the forward time is forced.
        let tight_cap = Bytes::new(convert::f64_u64_clamped(
            (static_b + pinned + free / 4.0) / 4.0,
        ));
        let roomy = forced_recompute_lb(&ctx, 4, Bytes::from_gib(80));
        let tight = forced_recompute_lb(&ctx, 4, tight_cap);
        assert_eq!(roomy, MicroSecs::ZERO);
        assert!(tight > MicroSecs::ZERO, "tight {tight}");
        Ok(())
    }
}
