//! The Figure 3 walkthrough: a two-stage pipeline improved in two moves.
//!
//! 1. *Full recomputation everywhere* — balanced but slow backwards.
//! 2. *Adaptive recomputation* — each stage saves what its memory allows
//!    (stage 1 saves more than stage 0), shortening warmup/ending but
//!    leaving stage 0 the steady-phase bottleneck.
//! 3. *Adaptive partitioning* — stage 0 hands layers to stage 1,
//!    re-balancing the steady phase.
//!
//! ```bash
//! cargo run --release --example overview_two_stage
//! ```

use adapipe::{Method, Planner};
use adapipe_hw::presets as hw;
use adapipe_model::{presets, ParallelConfig, TrainConfig};
use adapipe_units::MicroSecs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A memory-tight scenario so the recomputation trade-off is real:
    // GPT-3 on two pipeline stages of 8-way tensor-parallel devices,
    // with the optimizer states ZeRO-sharded over 8 data-parallel
    // replicas so the stages fit at all.
    let planner = Planner::new(presets::gpt3_175b(), hw::cluster_a_with_nodes(16));
    let parallel = ParallelConfig::new(8, 2, 8)?;
    let train = TrainConfig::new(1, 8192, 256)?;

    let mut prev: Option<MicroSecs> = None;
    for (step, method, label) in [
        (1, Method::DappleFull, "full recomputation for all stages"),
        (
            2,
            Method::EvenPartitioning,
            "adaptive recomputation (opt. 1)",
        ),
        (3, Method::AdaPipe, "+ adaptive partitioning (opt. 2)"),
    ] {
        let plan = planner.plan(method, parallel, train)?;
        let eval = planner.evaluate(&plan);
        println!("step {step}: {label}");
        for (s, stage) in plan.stages.iter().enumerate() {
            println!(
                "  stage {s}: {} layers, {}/{} units saved, F {:.0} ms, B {:.0} ms",
                stage.layer_count(),
                stage.saved_units(),
                stage.strategy.len(),
                stage.cost.time_f.as_millis(),
                stage.cost.time_b.as_millis(),
            );
        }
        let delta = prev.map_or(String::new(), |p| {
            format!(
                "  ({:+.1}% vs previous step)",
                100.0 * ((eval.iteration_time - p) / p)
            )
        });
        println!(
            "  iteration: {:.3}s{delta}\n",
            eval.iteration_time.as_secs()
        );
        prev = Some(eval.iteration_time);
    }
    println!(
        "Each move should shorten the iteration: saving intermediates cuts the \
         backward passes, then moving layers rearward removes the imbalance bubble."
    );
    Ok(())
}
