//! Units metadata round-trips and rejections for serialized plans.
//!
//! The golden plans under `tests/golden/*.plan` are the accepted `v2`
//! artifacts (microseconds + bytes, declared in the header); the
//! fixtures under `tests/golden/rejected/` must *fail* to load with
//! the `unit-mismatch` diagnostic. CI drives the same fixtures through
//! the `adapipe verify` binary; these tests pin the library behaviour.

use adapipe::plan_io::{self, PlanParseError};
use std::path::Path;

fn read(rel: &str) -> String {
    // CARGO_MANIFEST_DIR is crates/adapipe; the shared fixtures live at
    // the workspace root.
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// Every checked-in golden plan declares this build's units and loads
/// without conversion warnings.
#[test]
fn golden_plans_are_v2_and_warning_free() {
    for name in ["gpt2_adapipe", "gpt2_even"] {
        let text = read(&format!("tests/golden/{name}.plan"));
        assert!(
            text.starts_with("adapipe-plan v2"),
            "{name}: golden plans must be v2"
        );
        assert!(
            text.contains("units.time = us"),
            "{name}: missing time unit"
        );
        assert!(
            text.contains("units.bytes = B"),
            "{name}: missing byte unit"
        );
        let (plan, warnings) =
            plan_io::from_text_with_warnings(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(warnings.is_empty(), "{name}: unexpected {warnings:?}");
        assert!(!plan.stages.is_empty());
    }
}

/// A checked-in legacy v1 artifact (times in seconds, no units block)
/// loads with the conversion warning, and re-emitting it produces a
/// clean v2 plan that passes the full static verifier.
#[test]
fn legacy_v1_fixture_converts_with_a_warning_and_reverifies() {
    let text = read("tests/golden/legacy_v1.plan");
    assert!(text.starts_with("adapipe-plan v1"), "fixture must be v1");
    assert!(!text.contains("units."), "v1 must carry no units block");

    let (plan, warnings) = plan_io::from_text_with_warnings(&text).expect("v1 fixture loads");
    assert_eq!(warnings.len(), 1, "{warnings:?}");
    assert!(
        warnings[0].contains("legacy v1 plan")
            && warnings[0].contains("seconds")
            && warnings[0].contains("microseconds"),
        "conversion warning must say what was rescaled: {warnings:?}"
    );

    // Re-emit: the upgraded artifact is v2 and loads warning-free.
    let upgraded = plan_io::to_text(&plan);
    assert!(upgraded.starts_with("adapipe-plan v2"), "{upgraded}");
    assert!(upgraded.contains("units.time = us"), "{upgraded}");
    let (back, clean) = plan_io::from_text_with_warnings(&upgraded).expect("v2 re-load");
    assert!(
        clean.is_empty(),
        "upgraded plan must be warning-free: {clean:?}"
    );
    assert_eq!(plan, back, "upgrade round-trip must preserve the plan");

    // The converted plan is not just parseable — it still satisfies
    // every invariant of the world it was planned for (the gpt2 golden
    // config: cluster a, one node).
    let planner = adapipe::Planner::new(
        adapipe_model::presets::gpt2_small(),
        adapipe_hw::presets::cluster_a_with_nodes(1),
    );
    let report = planner.verify_with(&back, adapipe::VerifyOptions::default());
    assert!(
        !report.has_errors(),
        "upgraded v1 plan failed verification:\n{report}"
    );
}

/// A plan declaring a foreign time unit is rejected outright — with
/// the stable `unit-mismatch` code — instead of being silently
/// reinterpreted (a ms-vs-µs slip rescales every Eq. (1)–(3) term by
/// 1000×).
#[test]
fn mismatched_units_fixture_is_rejected_with_the_diagnostic_code() {
    let text = read("tests/golden/rejected/units_ms.plan");
    let err = plan_io::from_text_with_warnings(&text)
        .expect_err("ms-declared plan must not load in a µs build");
    assert!(
        err.to_string().starts_with("unit-mismatch:"),
        "diagnostic code missing from message: {err}"
    );
    match err {
        PlanParseError::UnitMismatch {
            key,
            declared,
            expected,
        } => {
            assert_eq!(key, "units.time");
            assert_eq!(declared, "ms");
            assert_eq!(expected, "us");
        }
        other => panic!("wrong error: {other}"),
    }
    // The code is part of the stable diagnostic catalog.
    assert_eq!(
        adapipe_check::CheckCode::UnitMismatch.name(),
        "unit-mismatch"
    );
}
