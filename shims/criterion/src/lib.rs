//! Offline shim for `criterion`.
//!
//! Implements the subset of the Criterion API this workspace's benches
//! use (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `BenchmarkId`, `Bencher::iter`) with a simple mean/min/max timer
//! instead of Criterion's statistical machinery. Each bench binary's
//! summary is printed and, when a `results/` directory can be located
//! (walking up from the working directory, or via the
//! `ADAPIPE_RESULTS_DIR` environment variable), also written to
//! `results/BENCH_<bench-name>.json` so benchmark trajectories are
//! machine-readable. See `shims/README.md`.

use std::fmt::Display;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter display.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Anything accepted where a benchmark id is expected.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/function/parameter` path.
    pub id: String,
    /// Number of timed iterations.
    pub samples: u64,
    /// Mean wall time per iteration.
    pub mean: Duration,
    /// Fastest iteration.
    pub min: Duration,
    /// Slowest iteration.
    pub max: Duration,
}

/// The bench context handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
    default_sample_size: Option<usize>,
}

/// Times closures for one benchmark (shim of `criterion::Bencher`).
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once for warmup, then `samples` timed iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f());
        self.durations.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.durations.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count per benchmark (Criterion's minimum is
    /// 10; this shim accepts any positive value).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            durations: Vec::new(),
        };
        f(&mut bencher);
        let full_id = format!("{}/{id}", self.name);
        assert!(
            !bencher.durations.is_empty(),
            "benchmark {full_id} never called Bencher::iter"
        );
        let total: Duration = bencher.durations.iter().sum();
        let result = BenchResult {
            id: full_id,
            samples: bencher.durations.len() as u64,
            mean: total / bencher.durations.len() as u32,
            min: *bencher.durations.iter().min().expect("nonempty"),
            max: *bencher.durations.iter().max().expect("nonempty"),
        };
        println!(
            "bench {:<48} {:>12.3?} /iter (min {:.3?}, max {:.3?}, {} samples)",
            result.id, result.mean, result.min, result.max, result.samples
        );
        self.criterion.results.push(result);
    }

    /// Benches `f` under `id`.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        self.run(id.into_id(), f);
        self
    }

    /// Benches `f` under `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, B: IntoBenchmarkId, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: B,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.into_id(), |b| f(b, input));
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

impl Criterion {
    /// Opens a benchmark group named `name`.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size.unwrap_or(10);
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Benches a standalone function (no group).
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let mut group = BenchmarkGroup {
            criterion: self,
            name: "bench".into(),
            sample_size: 10,
        };
        group.run(id.into_id(), f);
        self
    }

    /// Renders all collected results as a JSON document, stamped with
    /// run metadata: `schema_version`, the git commit the bench ran at
    /// (`$ADAPIPE_GIT_COMMIT` override, then `git rev-parse`, then
    /// `unknown`), and the config name (`$ADAPIPE_BENCH_CONFIG`,
    /// default `default`) — so `cargo run -p xtask -- bench-diff` can
    /// tell which runs are comparable.
    #[must_use]
    pub fn summary_json(&self, bench_name: &str) -> String {
        let mut out = String::from("{\n");
        let _ = write!(
            out,
            "  \"bench\": \"{}\",\n  \"schema_version\": \"adapipe-bench/v1\",\n  \
             \"commit\": \"{}\",\n  \"config\": \"{}\",\n  \"unit\": \"ns\",\n",
            escape(bench_name),
            escape(&git_commit()),
            escape(&bench_config_name())
        );
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"id\": \"{}\", \"samples\": {}, \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}{}",
                escape(&r.id),
                r.samples,
                r.mean.as_nanos(),
                r.min.as_nanos(),
                r.max.as_nanos(),
                if i + 1 < self.results.len() { "," } else { "" }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Prints the run summary and writes `results/BENCH_<name>.json`
    /// when a results directory is discoverable.
    pub fn final_summary(&self) {
        let name = bench_binary_name();
        println!("\n{} benchmark(s) complete", self.results.len());
        let Some(dir) = results_dir() else {
            eprintln!("note: no results/ directory found; skipping BENCH_{name}.json");
            return;
        };
        let path = dir.join(format!("BENCH_{name}.json"));
        match std::fs::write(&path, self.summary_json(&name)) {
            Ok(()) => println!("summary written to {}", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The commit the bench ran at: `$ADAPIPE_GIT_COMMIT` if set (CI knows
/// best), else `git rev-parse --short HEAD`, else `unknown` (benches
/// must run outside a checkout too).
fn git_commit() -> String {
    if let Ok(commit) = std::env::var("ADAPIPE_GIT_COMMIT") {
        return commit;
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The named configuration of this run (`$ADAPIPE_BENCH_CONFIG`); bench
/// artifacts from different configs are not comparable.
fn bench_config_name() -> String {
    std::env::var("ADAPIPE_BENCH_CONFIG").unwrap_or_else(|_| "default".to_string())
}

/// The bench target's name, recovered from `argv[0]`
/// (`.../deps/knapsack-<hash>` → `knapsack`).
fn bench_binary_name() -> String {
    let argv0 = std::env::args().next().unwrap_or_default();
    let stem = PathBuf::from(argv0)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "bench".into());
    // Cargo appends `-<16 hex digits>` to the target name.
    match stem.rsplit_once('-') {
        Some((base, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            base.to_string()
        }
        _ => stem,
    }
}

/// Locates the `results/` directory: `$ADAPIPE_RESULTS_DIR` if set, else
/// the first `results/` found walking up from the working directory.
fn results_dir() -> Option<PathBuf> {
    if let Ok(dir) = std::env::var("ADAPIPE_RESULTS_DIR") {
        return Some(PathBuf::from(dir));
    }
    let mut cur = std::env::current_dir().ok()?;
    loop {
        let candidate = cur.join("results");
        if candidate.is_dir() {
            return Some(candidate);
        }
        if !cur.pop() {
            return None;
        }
    }
}

/// Shim of `criterion_group!`: a function running each bench against a
/// shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Shim of `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_measure_and_summarize() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(3);
            g.bench_function(BenchmarkId::new("square", 4), |b| {
                b.iter(|| black_box(4u64) * black_box(4u64))
            });
            g.bench_with_input(BenchmarkId::new("sum", "vec"), &vec![1u64, 2, 3], |b, v| {
                b.iter(|| v.iter().sum::<u64>())
            });
            g.finish();
        }
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[0].samples, 3);
        assert!(c.results[0].min <= c.results[0].mean);
        let json = c.summary_json("demo");
        assert!(json.contains("\"id\": \"demo/square/4\""));
        assert!(json.contains("\"mean_ns\""));
    }

    #[test]
    #[should_panic(expected = "never called")]
    fn forgetting_iter_is_an_error() {
        let mut c = Criterion::default();
        c.benchmark_group("bad").bench_function("noop", |_b| {});
    }
}
