use std::error::Error;
use std::fmt;

/// Error returned when a model or parallelism configuration is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A size parameter that must be positive was zero.
    ZeroField {
        /// Name of the offending field.
        field: &'static str,
    },
    /// `hidden` is not divisible by the number of attention heads.
    HiddenNotDivisibleByHeads {
        /// Hidden dimension of the model.
        hidden: usize,
        /// Number of attention heads.
        heads: usize,
    },
    /// The number of attention heads is not divisible by the KV-head count.
    HeadsNotDivisibleByKvHeads {
        /// Number of attention heads.
        heads: usize,
        /// Number of KV heads (grouped-query attention).
        kv_heads: usize,
    },
    /// The global batch size is not divisible by `data_parallel * micro_batch`.
    BatchNotDivisible {
        /// Global batch size.
        global_batch: usize,
        /// Product that must divide it.
        divisor: usize,
    },
    /// Something that must divide another quantity does not.
    NotDivisible {
        /// Description of the relationship that failed.
        what: &'static str,
        /// Dividend.
        value: usize,
        /// Divisor.
        by: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroField { field } => {
                write!(f, "configuration field `{field}` must be positive")
            }
            ConfigError::HiddenNotDivisibleByHeads { hidden, heads } => {
                write!(f, "hidden size {hidden} is not divisible by {heads} heads")
            }
            ConfigError::HeadsNotDivisibleByKvHeads { heads, kv_heads } => {
                write!(f, "{heads} heads are not divisible by {kv_heads} kv heads")
            }
            ConfigError::BatchNotDivisible {
                global_batch,
                divisor,
            } => write!(
                f,
                "global batch size {global_batch} is not divisible by \
                 data_parallel * micro_batch = {divisor}"
            ),
            ConfigError::NotDivisible { what, value, by } => {
                write!(f, "{what}: {value} is not divisible by {by}")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errs = [
            ConfigError::ZeroField { field: "hidden" },
            ConfigError::HiddenNotDivisibleByHeads {
                hidden: 10,
                heads: 3,
            },
            ConfigError::HeadsNotDivisibleByKvHeads {
                heads: 7,
                kv_heads: 2,
            },
            ConfigError::BatchNotDivisible {
                global_batch: 7,
                divisor: 2,
            },
            ConfigError::NotDivisible {
                what: "devices",
                value: 7,
                by: 2,
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.chars().next().unwrap().is_uppercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
    }
}
