//! Fixture: inline string metric/span names must fire
//! `stringly-metric`.

pub fn count(rec: &Recorder) {
    rec.incr("serve.requests.total");
    rec.observe("serve.wait.us", 12.0);
    let _span = rec.span("plan");
}

pub fn named_constants_are_fine(rec: &Recorder, fl: &FlightRecorder) {
    rec.incr(keys::SERVE_REQUESTS_TOTAL);
    rec.observe(keys::SERVE_WAIT_US, 12.0);
    let _span = rec.span_cat(keys::SPAN_PLAN, "planner");
    fl.note(keys::FLIGHT_MANUAL, format!("dump #{n}"));
}
