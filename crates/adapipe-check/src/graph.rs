//! Static checks over the simulator's task graphs: the 1F1B dependency
//! structure must be acyclic, and under fixed-order device queues the
//! queue order must not contradict dependency order (which would
//! deadlock the engine at run time).

use crate::diag::{CheckCode, Diagnostic};
use adapipe_sim::{Discipline, TaskGraph};
use adapipe_units::MicroSecs;

/// Kahn's algorithm over `edges` (from → to). Returns the ids of tasks
/// that can never become ready (empty when the graph is acyclic).
fn stuck_tasks(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    let mut indegree = vec![0usize; n];
    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(from, to) in edges {
        indegree[to] += 1;
        out_edges[from].push(to);
    }
    let mut ready: Vec<usize> = (0..n).filter(|&t| indegree[t] == 0).collect();
    let mut done = 0usize;
    while let Some(t) = ready.pop() {
        done += 1;
        for &next in &out_edges[t] {
            indegree[next] -= 1;
            if indegree[next] == 0 {
                ready.push(next);
            }
        }
    }
    if done == n {
        Vec::new()
    } else {
        (0..n).filter(|&t| indegree[t] > 0).collect()
    }
}

fn describe(g: &TaskGraph, stuck: &[usize]) -> String {
    let sample: Vec<String> = stuck
        .iter()
        .take(4)
        .map(|&t| {
            let m = g.task_meta(t);
            format!(
                "task {t} ({}{} stage {} dev {})",
                m.kind,
                m.micro_batch,
                m.stage,
                g.task_device(t)
            )
        })
        .collect();
    format!(
        "{} of {} tasks can never start: {}",
        stuck.len(),
        g.len(),
        sample.join(", ")
    )
}

/// Checks a task graph for the schedule-level invariants: non-negative
/// durations, an acyclic dependency DAG, and — under
/// [`Discipline::FixedOrder`] — device queues whose insertion order is
/// compatible with the dependencies (per-device non-overlap is then
/// achievable without deadlock).
#[must_use]
pub fn check_task_graph(g: &TaskGraph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = g.len();
    let mut dep_edges = Vec::new();
    for t in 0..n {
        if g.task_duration(t) < MicroSecs::ZERO {
            out.push(Diagnostic::error(
                CheckCode::TaskDuration,
                Some(g.task_meta(t).stage),
                format!("task {t} has negative duration {}", g.task_duration(t)),
            ));
        }
        for &(dep, _) in g.task_deps(t) {
            dep_edges.push((dep, t));
        }
    }

    let stuck = stuck_tasks(n, &dep_edges);
    if !stuck.is_empty() {
        out.push(Diagnostic::error(
            CheckCode::CycleDetected,
            None,
            format!("dependency cycle: {}", describe(g, &stuck)),
        ));
        return out;
    }

    if g.discipline() == Discipline::FixedOrder {
        // A fixed-order device runs its queue strictly in insertion
        // order, which adds an implicit edge between queue neighbours.
        let mut last_on_device: Vec<Option<usize>> = vec![None; g.devices()];
        let mut combined = dep_edges;
        for t in 0..n {
            let dev = g.task_device(t);
            if let Some(prev) = last_on_device[dev] {
                combined.push((prev, t));
            }
            last_on_device[dev] = Some(t);
        }
        let stuck = stuck_tasks(n, &combined);
        if !stuck.is_empty() {
            out.push(Diagnostic::error(
                CheckCode::DeviceOrderDeadlock,
                None,
                format!(
                    "fixed-order queues contradict the dependencies: {}",
                    describe(g, &stuck)
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapipe_sim::{OpKind, TaskMeta};
    use adapipe_units::Bytes;

    fn meta(stage: usize, mb: usize) -> TaskMeta {
        TaskMeta {
            kind: OpKind::Forward,
            micro_batch: mb,
            stage,
            replica: 0,
        }
    }

    #[test]
    fn linear_chain_is_clean() {
        let mut g = TaskGraph::new("chain", 2, Discipline::FixedOrder);
        let a = g.push(
            0,
            MicroSecs::new(1.0),
            vec![],
            Bytes::ZERO,
            Bytes::ZERO,
            0,
            meta(0, 0),
        );
        let b = g.push(
            1,
            MicroSecs::new(1.0),
            vec![(a, MicroSecs::ZERO)],
            Bytes::ZERO,
            Bytes::ZERO,
            1,
            meta(1, 0),
        );
        let _ = g.push(
            0,
            MicroSecs::new(1.0),
            vec![(b, MicroSecs::ZERO)],
            Bytes::ZERO,
            Bytes::ZERO,
            2,
            meta(0, 1),
        );
        assert!(check_task_graph(&g).is_empty());
    }

    #[test]
    fn cycle_is_detected() {
        let mut g = TaskGraph::new("cyclic", 1, Discipline::GreedyPriority);
        let a = g.push(
            0,
            MicroSecs::new(1.0),
            vec![],
            Bytes::ZERO,
            Bytes::ZERO,
            0,
            meta(0, 0),
        );
        let b = g.push(
            0,
            MicroSecs::new(1.0),
            vec![(a, MicroSecs::ZERO)],
            Bytes::ZERO,
            Bytes::ZERO,
            1,
            meta(0, 1),
        );
        g.add_dep(a, b, MicroSecs::ZERO);
        let diags = check_task_graph(&g);
        assert!(diags.iter().any(|d| d.code == CheckCode::CycleDetected));
        assert!(diags[0].message.contains("can never start"));
    }

    #[test]
    fn fixed_order_deadlock_is_detected() {
        // Queue on device 0: x then y, but y must run before x.
        let mut g = TaskGraph::new("deadlock", 2, Discipline::FixedOrder);
        let x = g.push(
            0,
            MicroSecs::new(1.0),
            vec![],
            Bytes::ZERO,
            Bytes::ZERO,
            0,
            meta(0, 0),
        );
        let up = g.push(
            1,
            MicroSecs::new(1.0),
            vec![(x, MicroSecs::ZERO)],
            Bytes::ZERO,
            Bytes::ZERO,
            1,
            meta(1, 0),
        );
        let y = g.push(
            0,
            MicroSecs::new(1.0),
            vec![],
            Bytes::ZERO,
            Bytes::ZERO,
            2,
            meta(0, 1),
        );
        g.add_dep(x, y, MicroSecs::ZERO);
        let _ = up;
        let diags = check_task_graph(&g);
        assert!(
            diags
                .iter()
                .any(|d| d.code == CheckCode::DeviceOrderDeadlock),
            "{diags:?}"
        );
        // The same graph under greedy priorities is fine (y runs first).
        let mut g2 = TaskGraph::new("greedy", 2, Discipline::GreedyPriority);
        let x = g2.push(
            0,
            MicroSecs::new(1.0),
            vec![],
            Bytes::ZERO,
            Bytes::ZERO,
            5,
            meta(0, 0),
        );
        let _ = g2.push(
            1,
            MicroSecs::new(1.0),
            vec![(x, MicroSecs::ZERO)],
            Bytes::ZERO,
            Bytes::ZERO,
            1,
            meta(1, 0),
        );
        let y = g2.push(
            0,
            MicroSecs::new(1.0),
            vec![],
            Bytes::ZERO,
            Bytes::ZERO,
            0,
            meta(0, 1),
        );
        g2.add_dep(x, y, MicroSecs::ZERO);
        assert!(check_task_graph(&g2).is_empty());
    }

    #[test]
    fn negative_duration_is_flagged() {
        let mut g = TaskGraph::new("neg", 1, Discipline::FixedOrder);
        let _ = g.push(
            0,
            MicroSecs::new(-1.0),
            vec![],
            Bytes::ZERO,
            Bytes::ZERO,
            0,
            meta(0, 0),
        );
        let diags = check_task_graph(&g);
        assert!(diags.iter().any(|d| d.code == CheckCode::TaskDuration));
    }
}
