use crate::layer::{Layer, LayerKind};
use crate::spec::ModelSpec;
use crate::unit::{units_for_layer, ComputationUnit};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::RangeInclusive;

/// An inclusive range of layer indices assigned to one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerRange {
    /// Index of the first layer in the range.
    pub first: usize,
    /// Index of the last layer in the range (inclusive).
    pub last: usize,
}

impl LayerRange {
    /// Creates a range; `first` must not exceed `last`.
    ///
    /// # Panics
    ///
    /// Panics if `first > last`.
    #[must_use]
    pub fn new(first: usize, last: usize) -> Self {
        assert!(first <= last, "invalid layer range {first}..={last}");
        LayerRange { first, last }
    }

    /// Number of layers in the range.
    #[must_use]
    pub fn len(&self) -> usize {
        self.last - self.first + 1
    }

    /// Always false: a `LayerRange` holds at least one layer.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The equivalent `std` inclusive range, for iteration.
    #[must_use]
    pub fn as_range(&self) -> RangeInclusive<usize> {
        self.first..=self.last
    }

    /// Whether `layer` falls inside the range.
    #[must_use]
    pub fn contains(&self, layer: usize) -> bool {
        (self.first..=self.last).contains(&layer)
    }
}

impl fmt::Display for LayerRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..={}]", self.first, self.last)
    }
}

/// The flat layer sequence of a model:
/// `[Embedding, (Attention, FeedForward) × L, DecodingHead]`.
///
/// This is the sequence adaptive partitioning divides into contiguous
/// stages (§5 of the paper). Table 4 of the paper counts "layers" in
/// exactly this flattened form: GPT-3's 96 decoder blocks become
/// 2·96 + 2 = 194 layers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerSeq {
    layers: Vec<Layer>,
}

impl LayerSeq {
    /// Builds the layer sequence for `spec`.
    #[must_use]
    pub fn for_model(spec: &ModelSpec) -> Self {
        let mut layers = Vec::with_capacity(2 * spec.decoder_layers() + 2);
        layers.push(Layer {
            kind: LayerKind::Embedding,
            index: 0,
        });
        for _ in 0..spec.decoder_layers() {
            let i = layers.len();
            layers.push(Layer {
                kind: LayerKind::Attention,
                index: i,
            });
            layers.push(Layer {
                kind: LayerKind::FeedForward,
                index: i + 1,
            });
        }
        let i = layers.len();
        layers.push(Layer {
            kind: LayerKind::DecodingHead,
            index: i,
        });
        LayerSeq { layers }
    }

    /// Number of layers in the sequence.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the sequence is empty (never true for sequences built by
    /// [`LayerSeq::for_model`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The layer at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[must_use]
    pub fn layer(&self, index: usize) -> Layer {
        self.layers[index]
    }

    /// Iterates over the layers in order.
    pub fn iter(&self) -> impl Iterator<Item = Layer> + '_ {
        self.layers.iter().copied()
    }

    /// The layers of `range` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the sequence.
    #[must_use]
    pub fn slice(&self, range: LayerRange) -> &[Layer] {
        &self.layers[range.first..=range.last]
    }

    /// The computation units of all layers in `range`, in execution order.
    #[must_use]
    pub fn units_in(&self, spec: &ModelSpec, range: LayerRange) -> Vec<ComputationUnit> {
        let mut units = Vec::new();
        for layer in self.slice(range) {
            for kind in units_for_layer(spec, layer.kind) {
                units.push(ComputationUnit {
                    kind,
                    layer: layer.index,
                });
            }
        }
        units
    }

    /// Splits the sequence into `stages` contiguous ranges with layer
    /// counts as equal as possible (earlier stages take the remainder).
    ///
    /// This is the *even partitioning* baseline of the paper's evaluation.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is zero or exceeds the number of layers.
    #[must_use]
    pub fn even_partition(&self, stages: usize) -> Vec<LayerRange> {
        assert!(stages > 0, "cannot partition into zero stages");
        assert!(
            stages <= self.len(),
            "cannot split {} layers into {stages} stages",
            self.len()
        );
        let base = self.len() / stages;
        let extra = self.len() % stages;
        let mut ranges = Vec::with_capacity(stages);
        let mut start = 0;
        for s in 0..stages {
            let take = base + usize::from(s < extra);
            ranges.push(LayerRange::new(start, start + take - 1));
            start += take;
        }
        ranges
    }

    /// Validates that `ranges` is a partition of the full sequence into
    /// contiguous, non-overlapping, exhaustive stage assignments.
    #[must_use]
    pub fn is_valid_partition(&self, ranges: &[LayerRange]) -> bool {
        if ranges.first().is_none_or(|r| r.first != 0) {
            return false;
        }
        for w in ranges.windows(2) {
            let &[prev, next] = w else { continue };
            if next.first != prev.last + 1 {
                return false;
            }
        }
        ranges.last().is_some_and(|r| r.last == self.len() - 1)
    }
}

impl fmt::Display for LayerSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "layer sequence of {} layers", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn sequence_shape_matches_paper_counting() {
        let spec = presets::gpt3_175b();
        let seq = LayerSeq::for_model(&spec);
        assert_eq!(seq.len(), 194);
        assert_eq!(seq.layer(0).kind, LayerKind::Embedding);
        assert_eq!(seq.layer(1).kind, LayerKind::Attention);
        assert_eq!(seq.layer(2).kind, LayerKind::FeedForward);
        assert_eq!(seq.layer(193).kind, LayerKind::DecodingHead);
    }

    #[test]
    fn interior_alternates_strictly() {
        let spec = presets::llama2_70b();
        let seq = LayerSeq::for_model(&spec);
        for i in 1..seq.len() - 1 {
            let expect = if i % 2 == 1 {
                LayerKind::Attention
            } else {
                LayerKind::FeedForward
            };
            assert_eq!(seq.layer(i).kind, expect, "layer {i}");
        }
    }

    #[test]
    fn even_partition_is_valid_and_balanced() {
        let spec = presets::gpt3_175b();
        let seq = LayerSeq::for_model(&spec);
        let parts = seq.even_partition(8);
        assert_eq!(parts.len(), 8);
        assert!(seq.is_valid_partition(&parts));
        // 194 = 8*24 + 2 -> two stages of 25, six of 24.
        let lens: Vec<usize> = parts.iter().map(LayerRange::len).collect();
        assert_eq!(lens.iter().sum::<usize>(), 194);
        assert!(lens.iter().all(|&l| l == 24 || l == 25));
    }

    #[test]
    fn invalid_partitions_detected() {
        let spec = presets::tiny_gpt();
        let seq = LayerSeq::for_model(&spec);
        let good = seq.even_partition(2);
        assert!(seq.is_valid_partition(&good));
        // gap
        let bad = vec![LayerRange::new(0, 1), LayerRange::new(3, seq.len() - 1)];
        assert!(!seq.is_valid_partition(&bad));
        // not covering the tail
        let bad = vec![LayerRange::new(0, 1)];
        assert!(!seq.is_valid_partition(&bad));
        // not starting at zero
        let bad = vec![LayerRange::new(1, seq.len() - 1)];
        assert!(!seq.is_valid_partition(&bad));
    }

    #[test]
    fn units_in_range_cover_each_layer() {
        let spec = presets::tiny_gpt();
        let seq = LayerSeq::for_model(&spec);
        let units = seq.units_in(&spec, LayerRange::new(1, 2));
        // attention (6 units) + gelu ffn (4 units)
        assert_eq!(units.len(), 10);
        assert!(units.iter().take(6).all(|u| u.layer == 1));
        assert!(units.iter().skip(6).all(|u| u.layer == 2));
    }

    #[test]
    #[should_panic(expected = "invalid layer range")]
    fn reversed_range_panics() {
        let _ = LayerRange::new(3, 2);
    }
}
