//! Figure 1: simulated per-stage memory for GPT-3 under full vs no
//! recomputation at sequence lengths 4096/8192/16384, (t, p, d) =
//! (8, 8, 1). Expected shape: no-recomputation lines decline with stage
//! id and cross the 80 GB device limit as the sequence grows; full
//! recomputation stays flat and far below.

use adapipe::{Method, Planner};
use adapipe_bench::{gb, print_table};
use adapipe_hw::presets as hw;
use adapipe_model::{presets, ParallelConfig, TrainConfig};

fn main() {
    let planner = Planner::new(presets::gpt3_175b(), hw::cluster_a());
    let parallel = ParallelConfig::new(8, 8, 1).expect("valid");
    let capacity = gb(planner.capacity());

    let mut rows = Vec::new();
    for (seq, gbs) in [(4096usize, 128usize), (8192, 64), (16384, 32)] {
        let train = TrainConfig::new(1, seq, gbs).expect("valid");
        for method in [Method::DappleFull, Method::DappleNone] {
            let plan = planner
                .plan(method, parallel, train)
                .expect("baselines always plan");
            let eval = planner.evaluate(&plan);
            let mut row = vec![format!("{seq}"), method.to_string()];
            row.extend(
                eval.peak_bytes_per_device
                    .iter()
                    .map(|&b| format!("{:.1}", gb(b))),
            );
            row.push(if eval.fits {
                "fits".into()
            } else {
                "OOM".into()
            });
            rows.push(row);
        }
    }
    print_table(
        &format!("Figure 1: per-stage peak memory (GB), device limit {capacity:.0} GB"),
        &[
            "seq", "method", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "verdict",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: DAPPLE-Non declines linearly with stage id and exceeds \
         {capacity:.0} GB at longer sequences; DAPPLE-Full is flat and well under the limit."
    );
}
