//! Optimality certificates: machine-checkable lower bounds on Eq. (3).
//!
//! Algorithm 1 is near-optimal, not exact, and for production-sized
//! instances the brute-force oracle cannot enumerate the search space.
//! A certificate closes the gap from the other side: a *relaxation* of
//! Eq. (3) whose bound provably under-estimates every feasible plan, so
//! `lower_bound ≤ plan_cost ≤ (1 + ε) · lower_bound` certifies the plan
//! to within `ε` without enumerating anything.
//!
//! The bound has four terms, each sound against the Eq. (3) recurrences:
//!
//! * **warmup** — `W₀ ≥ Σ_s F_s`: by induction `W_s ≥ F_s + W_{s+1}`
//!   (base `W = F` at the last stage), and forward work is
//!   partition-invariant, so `Σ_s F_s = Σ_ℓ f_ℓ`.
//! * **ending** — `E₀ ≥ Σ_s B_s ≥ Σ_ℓ b_ℓ^min`, the no-recompute
//!   backward time, same induction.
//! * **forced recompute** — on top of `Σ b^min`, any plan must recompute
//!   enough to fit memory. Static bytes are linear in parameters, hence
//!   partition-independent in total, and every stage holds ≥ 1 live
//!   micro-batch, so the *pooled* per-micro-batch save budget is at most
//!   `p · capacity − static_total`. A fractional knapsack (save units
//!   greedily by forward-time per byte) over that pooled budget bounds
//!   the unavoidable recomputation from below.
//! * **bottleneck** — `M₀ = max_s (F_s + B_s)` is at least the pigeonhole
//!   average `(Σ f + Σ b^min) / p` and at least the largest single-layer
//!   micro-step (layers are atomic in §5's partitioning).
//!
//! `T_lb = warmup + ending + forced + (n − p) · bottleneck`. The
//! `adapipe` crate computes certificates from planner state; this module
//! owns the artifact (the `adapipe-certificate v1` text format) and the
//! checker so a certificate can be audited with no planner in sight.

// lint: allow-file(swallowed-result): fmt::Write into a String cannot fail
use crate::diag::{CheckCode, Diagnostic};
use crate::invariants::approx_eq;
use adapipe_units::{convert, MicroSecs};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Header line of the certificate text format.
pub const CERTIFICATE_HEADER: &str = "adapipe-certificate v1";

/// Default relative optimality gap `ε` accepted by the checker: the
/// calibrated worst case of Algorithm 1's heuristic objective plus the
/// relaxation's own slack (see `docs/verification.md`).
pub const DEFAULT_EPSILON: f64 = 0.35;

/// A lower-bound certificate for one plan's Eq. (3) iteration time.
///
/// Self-contained: carries the instance shape, each bound term, the
/// composed bound and the plan cost it certifies, so
/// [`check_certificate`] needs nothing else.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Certificate {
    /// Model layers `L` of the certified instance.
    pub layers: usize,
    /// Pipeline stages `p`.
    pub stages: usize,
    /// Micro-batches `n` per iteration.
    pub micro_batches: usize,
    /// Lower bound on warmup `W₀`: total forward time `Σ_ℓ f_ℓ`.
    pub warmup_lb: MicroSecs,
    /// Lower bound on ending `E₀`: no-recompute backward `Σ_ℓ b_ℓ^min`.
    pub ending_lb: MicroSecs,
    /// Lower bound on memory-forced recomputation added to `E₀`.
    pub forced_recompute_lb: MicroSecs,
    /// Lower bound on the bottleneck micro-step `M₀`.
    pub bottleneck_lb: MicroSecs,
    /// The composed bound — must equal [`Certificate::recomposed_bound`].
    pub lower_bound: MicroSecs,
    /// Predicted iteration time of the plan being certified.
    pub plan_cost: MicroSecs,
}

impl Certificate {
    /// Recomposes the bound from its terms:
    /// `warmup + ending + forced + (n − p) · bottleneck`.
    #[must_use]
    pub fn recomposed_bound(&self) -> MicroSecs {
        let steady_reps = self.micro_batches.saturating_sub(self.stages);
        self.warmup_lb
            + self.ending_lb
            + self.forced_recompute_lb
            + convert::count_f64(steady_reps) * self.bottleneck_lb
    }

    /// Relative gap `plan_cost / lower_bound − 1` (infinite for a
    /// non-positive bound).
    #[must_use]
    pub fn gap(&self) -> f64 {
        if self.lower_bound > MicroSecs::ZERO {
            self.plan_cost.as_micros() / self.lower_bound.as_micros() - 1.0
        } else {
            f64::INFINITY
        }
    }

    /// Serializes to the `adapipe-certificate v1` text format.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::from(CERTIFICATE_HEADER);
        out.push('\n');
        let _ = writeln!(out, "units.time = us");
        let _ = writeln!(out, "layers = {}", self.layers);
        let _ = writeln!(out, "stages = {}", self.stages);
        let _ = writeln!(out, "micro_batches = {}", self.micro_batches);
        let _ = writeln!(out, "warmup_lb = {}", self.warmup_lb.as_micros());
        let _ = writeln!(out, "ending_lb = {}", self.ending_lb.as_micros());
        let _ = writeln!(
            out,
            "forced_recompute_lb = {}",
            self.forced_recompute_lb.as_micros()
        );
        let _ = writeln!(out, "bottleneck_lb = {}", self.bottleneck_lb.as_micros());
        let _ = writeln!(out, "lower_bound = {}", self.lower_bound.as_micros());
        let _ = writeln!(out, "plan_cost = {}", self.plan_cost.as_micros());
        out
    }

    /// Parses the `adapipe-certificate v1` text format.
    ///
    /// # Errors
    ///
    /// [`CertificateParseError`] on a missing/unknown header, malformed
    /// lines, missing keys, unparsable values, or a units block that
    /// contradicts this build's microsecond convention.
    pub fn from_text(text: &str) -> Result<Certificate, CertificateParseError> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        if lines.next().map(str::trim) != Some(CERTIFICATE_HEADER) {
            return Err(CertificateParseError::BadHeader);
        }
        let mut fields: Vec<(String, String)> = Vec::new();
        for line in lines {
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| CertificateParseError::BadLine(line.to_string()))?;
            fields.push((key.trim().to_string(), value.trim().to_string()));
        }
        let get = |key: &'static str| -> Result<&str, CertificateParseError> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str())
                .ok_or(CertificateParseError::Missing(key))
        };
        let unit = get("units.time")?;
        if unit != "us" {
            return Err(CertificateParseError::UnitMismatch {
                declared: unit.to_string(),
            });
        }
        let count = |key: &'static str| -> Result<usize, CertificateParseError> {
            get(key)?
                .parse()
                .map_err(|_| CertificateParseError::BadValue {
                    key: key.to_string(),
                    value: get(key).unwrap_or_default().to_string(),
                })
        };
        let time = |key: &'static str| -> Result<MicroSecs, CertificateParseError> {
            get(key)?
                .parse()
                .map(MicroSecs::new)
                .map_err(|_| CertificateParseError::BadValue {
                    key: key.to_string(),
                    value: get(key).unwrap_or_default().to_string(),
                })
        };
        Ok(Certificate {
            layers: count("layers")?,
            stages: count("stages")?,
            micro_batches: count("micro_batches")?,
            warmup_lb: time("warmup_lb")?,
            ending_lb: time("ending_lb")?,
            forced_recompute_lb: time("forced_recompute_lb")?,
            bottleneck_lb: time("bottleneck_lb")?,
            lower_bound: time("lower_bound")?,
            plan_cost: time("plan_cost")?,
        })
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L={} p={} n={}: bound {:.3}ms ≤ cost {:.3}ms (gap {:.2}%)",
            self.layers,
            self.stages,
            self.micro_batches,
            self.lower_bound.as_millis(),
            self.plan_cost.as_millis(),
            self.gap() * 100.0
        )
    }
}

/// Error from [`Certificate::from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CertificateParseError {
    /// The header line is missing or names an unknown version.
    BadHeader,
    /// A required key is absent.
    Missing(&'static str),
    /// A line is not `key = value`.
    BadLine(String),
    /// A value failed to parse.
    BadValue {
        /// The key in question.
        key: String,
        /// The raw value.
        value: String,
    },
    /// The file declares a time unit other than microseconds.
    UnitMismatch {
        /// The unit the file declares.
        declared: String,
    },
}

impl fmt::Display for CertificateParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateParseError::BadHeader => {
                write!(f, "missing or unsupported certificate header")
            }
            CertificateParseError::Missing(key) => write!(f, "missing key `{key}`"),
            CertificateParseError::BadLine(line) => write!(f, "malformed line `{line}`"),
            CertificateParseError::BadValue { key, value } => {
                write!(f, "bad value for `{key}`: `{value}`")
            }
            CertificateParseError::UnitMismatch { declared } => write!(
                f,
                "unit-mismatch: `units.time = {declared}` contradicts this build's `us`"
            ),
        }
    }
}

impl Error for CertificateParseError {}

/// Validates a certificate: internal consistency
/// ([`CheckCode::CertificateInvalid`]) and the `(1 + ε)` optimality
/// envelope ([`CheckCode::OptimalityGap`]).
///
/// `tolerance` is the relative float tolerance for consistency checks
/// (use [`crate::DEFAULT_TOLERANCE`]); `epsilon` is the accepted
/// optimality gap (use [`DEFAULT_EPSILON`] unless the caller calibrated
/// its own).
#[must_use]
pub fn check_certificate(cert: &Certificate, epsilon: f64, tolerance: f64) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let terms = [
        ("warmup_lb", cert.warmup_lb),
        ("ending_lb", cert.ending_lb),
        ("forced_recompute_lb", cert.forced_recompute_lb),
        ("bottleneck_lb", cert.bottleneck_lb),
        ("lower_bound", cert.lower_bound),
        ("plan_cost", cert.plan_cost),
    ];
    for (name, value) in terms {
        if !value.as_micros().is_finite() || value < MicroSecs::ZERO {
            out.push(Diagnostic::error(
                CheckCode::CertificateInvalid,
                None,
                format!("term `{name}` is not a finite non-negative time: {value:?}"),
            ));
        }
    }
    if cert.stages == 0 || cert.layers < cert.stages || cert.micro_batches < cert.stages {
        out.push(Diagnostic::error(
            CheckCode::CertificateInvalid,
            None,
            format!(
                "instance shape L={} p={} n={} violates 1 ≤ p ≤ L and n ≥ p",
                cert.layers, cert.stages, cert.micro_batches
            ),
        ));
    }
    if !out.is_empty() {
        return out;
    }

    let recomposed = cert.recomposed_bound();
    if !approx_eq(
        cert.lower_bound.as_micros(),
        recomposed.as_micros(),
        tolerance,
    ) {
        out.push(Diagnostic::error(
            CheckCode::CertificateInvalid,
            None,
            format!(
                "stored lower bound {} disagrees with its terms (recomposed {})",
                cert.lower_bound, recomposed
            ),
        ));
    }
    if cert.lower_bound.as_micros() > cert.plan_cost.as_micros() * (1.0 + tolerance) {
        out.push(Diagnostic::error(
            CheckCode::CertificateInvalid,
            None,
            format!(
                "lower bound {} exceeds the plan cost {} it claims to bound — \
                 the relaxation or the plan cost is wrong",
                cert.lower_bound, cert.plan_cost
            ),
        ));
    } else if cert.plan_cost.as_micros() > cert.lower_bound.as_micros() * (1.0 + epsilon) {
        out.push(Diagnostic::error(
            CheckCode::OptimalityGap,
            None,
            format!(
                "plan cost {} exceeds (1 + {epsilon:.3}) × lower bound {} \
                 (gap {:.2}%)",
                cert.plan_cost,
                cert.lower_bound,
                cert.gap() * 100.0
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants::DEFAULT_TOLERANCE;

    fn valid() -> Certificate {
        let warmup = MicroSecs::new(100.0);
        let ending = MicroSecs::new(200.0);
        let forced = MicroSecs::new(10.0);
        let bottleneck = MicroSecs::new(25.0);
        // n − p = 28 steady repetitions.
        let lower = warmup + ending + forced + 28.0 * bottleneck;
        Certificate {
            layers: 26,
            stages: 4,
            micro_batches: 32,
            warmup_lb: warmup,
            ending_lb: ending,
            forced_recompute_lb: forced,
            bottleneck_lb: bottleneck,
            lower_bound: lower,
            plan_cost: lower * 1.2,
        }
    }

    #[test]
    fn valid_certificate_is_clean() {
        assert!(check_certificate(&valid(), DEFAULT_EPSILON, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn text_round_trip_is_exact() {
        let cert = valid();
        let parsed = Certificate::from_text(&cert.to_text()).expect("round-trip");
        assert_eq!(cert, parsed);
    }

    #[test]
    fn gap_beyond_epsilon_is_optimality_gap() {
        let mut cert = valid();
        cert.plan_cost = cert.lower_bound * 2.0;
        let diags = check_certificate(&cert, DEFAULT_EPSILON, DEFAULT_TOLERANCE);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, CheckCode::OptimalityGap);
        assert!((cert.gap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bound_above_cost_is_invalid_not_gap() {
        let mut cert = valid();
        cert.plan_cost = cert.lower_bound * 0.5;
        let diags = check_certificate(&cert, DEFAULT_EPSILON, DEFAULT_TOLERANCE);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, CheckCode::CertificateInvalid);
    }

    #[test]
    fn tampered_terms_are_invalid() {
        let mut cert = valid();
        cert.bottleneck_lb = cert.bottleneck_lb * 2.0;
        let diags = check_certificate(&cert, DEFAULT_EPSILON, DEFAULT_TOLERANCE);
        assert!(diags
            .iter()
            .any(|d| d.code == CheckCode::CertificateInvalid));
    }

    #[test]
    fn non_finite_terms_are_invalid() {
        let mut cert = valid();
        cert.warmup_lb = MicroSecs::new(f64::NAN);
        let diags = check_certificate(&cert, DEFAULT_EPSILON, DEFAULT_TOLERANCE);
        assert!(diags
            .iter()
            .any(|d| d.code == CheckCode::CertificateInvalid));
    }

    #[test]
    fn bad_shape_is_invalid() {
        for (l, p, n) in [(3usize, 4usize, 8usize), (26, 0, 8), (26, 4, 3)] {
            let mut cert = valid();
            (cert.layers, cert.stages, cert.micro_batches) = (l, p, n);
            let diags = check_certificate(&cert, DEFAULT_EPSILON, DEFAULT_TOLERANCE);
            assert!(
                diags
                    .iter()
                    .any(|d| d.code == CheckCode::CertificateInvalid),
                "L={l} p={p} n={n}"
            );
        }
    }

    #[test]
    fn parse_rejects_malformed_artifacts() {
        assert_eq!(
            Certificate::from_text("bogus v9\n"),
            Err(CertificateParseError::BadHeader)
        );
        let no_units = valid().to_text().replace("units.time = us\n", "");
        assert_eq!(
            Certificate::from_text(&no_units),
            Err(CertificateParseError::Missing("units.time"))
        );
        let wrong_units = valid().to_text().replace("= us", "= s");
        assert!(matches!(
            Certificate::from_text(&wrong_units),
            Err(CertificateParseError::UnitMismatch { .. })
        ));
        let truncated = valid().to_text().replace("plan_cost", "plan_cost_x");
        assert_eq!(
            Certificate::from_text(&truncated),
            Err(CertificateParseError::Missing("plan_cost"))
        );
        let garbled = valid().to_text().replace("stages = 4", "stages = four");
        assert!(matches!(
            Certificate::from_text(&garbled),
            Err(CertificateParseError::BadValue { .. })
        ));
        let no_eq = format!("{CERTIFICATE_HEADER}\njust words\n");
        assert!(matches!(
            Certificate::from_text(&no_eq),
            Err(CertificateParseError::BadLine(_))
        ));
    }
}
