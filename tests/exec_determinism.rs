//! Determinism laws for the parallel search engine (`docs/parallel.md`):
//! attaching the work-stealing pool or the shared subproblem cache must
//! never change a single byte of an emitted plan. The pool only
//! *prefills* isomorphism-class representatives — the DP itself stays
//! serial — and the subcache stores per-unit save flags that are
//! re-costed against the requesting window, so both layers are
//! byte-transparent by construction. These tests pin that law.

use std::sync::Arc;

use adapipe::{plan_io, Method, Planner};
use adapipe_exec::ExecPool;
use adapipe_hw::presets as hw;
use adapipe_model::{presets, ParallelConfig, TrainConfig};
use proptest::prelude::*;

fn gpt2_planner() -> Planner {
    Planner::new(presets::gpt2_small(), hw::cluster_a_with_nodes(1))
}

fn text_of(
    planner: &Planner,
    method: Method,
    parallel: ParallelConfig,
    train: TrainConfig,
) -> String {
    let plan = planner
        .plan(method, parallel, train)
        .unwrap_or_else(|e| panic!("{method} must plan on a loose configuration: {e}"));
    plan_io::to_text(&plan)
}

/// The same AdaPipe plan, byte for byte, with no pool and with pools of
/// 1, 2 and 8 workers: thread count is not allowed to leak into search
/// results.
#[test]
fn adapipe_plans_are_byte_identical_at_any_thread_count() {
    let parallel = ParallelConfig::new(2, 4, 1).expect("valid");
    let train = TrainConfig::new(1, 1024, 32).expect("valid");
    let baseline = text_of(&gpt2_planner(), Method::AdaPipe, parallel, train);
    for threads in [1usize, 2, 8] {
        let pooled = gpt2_planner().with_exec_pool(Arc::new(ExecPool::new(threads)));
        let text = text_of(&pooled, Method::AdaPipe, parallel, train);
        assert_eq!(
            text, baseline,
            "plan diverged from the sequential baseline at {threads} worker(s)"
        );
    }
}

/// The work-stealing seed orders *scheduling*, never results: two pools
/// with different seeds produce the same bytes.
#[test]
fn pool_seed_does_not_leak_into_plans() {
    let parallel = ParallelConfig::new(2, 4, 1).expect("valid");
    let train = TrainConfig::new(1, 2048, 32).expect("valid");
    let a = gpt2_planner().with_exec_pool(Arc::new(ExecPool::new(4).with_seed(1)));
    let b = gpt2_planner().with_exec_pool(Arc::new(ExecPool::new(4).with_seed(0xdead_beef)));
    assert_eq!(
        text_of(&a, Method::AdaPipe, parallel, train),
        text_of(&b, Method::AdaPipe, parallel, train),
    );
}

/// The process-global subproblem cache is byte-transparent: a planner
/// with the shared cache enabled (cold, then warm — the second plan
/// replays stored save-flags) emits exactly the uncached bytes, for
/// both adaptive methods.
#[test]
fn shared_subcache_replays_byte_identical_plans() {
    let parallel = ParallelConfig::new(2, 4, 1).expect("valid");
    let train = TrainConfig::new(1, 1024, 64).expect("valid");
    for method in [Method::AdaPipe, Method::EvenPartitioning] {
        let uncached = text_of(&gpt2_planner(), method, parallel, train);
        let cached_planner = gpt2_planner().with_shared_subcache(true);
        let cold = text_of(&cached_planner, method, parallel, train);
        let warm = text_of(&cached_planner, method, parallel, train);
        assert_eq!(cold, uncached, "{method}: cold cached plan diverged");
        assert_eq!(warm, uncached, "{method}: warm cached plan diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Pool + shared subcache together, against the sequential baseline,
    /// across randomized shapes: the full daemon configuration (what
    /// adapipe-serve runs) is byte-transparent too.
    #[test]
    fn daemon_configuration_is_byte_transparent(
        seq_kb in 1usize..=4,
        gbs_chunks in 1usize..=4,
        threads in 2usize..=6,
    ) {
        let parallel = ParallelConfig::new(2, 4, 1).expect("valid");
        let train = TrainConfig::new(1, seq_kb * 512, gbs_chunks * 16).expect("valid");
        let baseline = text_of(&gpt2_planner(), Method::AdaPipe, parallel, train);
        let daemon = gpt2_planner()
            .with_exec_pool(Arc::new(ExecPool::new(threads)))
            .with_shared_subcache(true);
        let text = text_of(&daemon, Method::AdaPipe, parallel, train);
        prop_assert_eq!(text, baseline);
    }
}
