pub fn shift(layer_idx: LayerIdx) -> LayerIdx {
    // lint: allow(index-confusion): wire decode of the raw index
    LayerIdx(layer_idx.0 + 1)
}
