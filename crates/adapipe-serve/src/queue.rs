//! A fixed-depth MPMC queue with explicit rejection.
//!
//! The worker pool pulls jobs from this queue; the acceptor pushes
//! with [`BoundedQueue::try_push`], which **fails fast** when the queue
//! is at capacity instead of blocking — the server turns that failure
//! into `503 + Retry-After` so saturation is visible to clients rather
//! than an accept-then-hang. Closing the queue wakes every blocked
//! worker; they drain the remaining items and then observe the close,
//! which is what makes graceful shutdown finish in-flight work.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue was closed; the item is handed back.
    Closed(T),
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A blocking MPMC queue with a hard depth bound.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (floored at 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState<T>> {
        // Recover from a poisoned lock: a panicking worker must not
        // wedge the queue for the rest of the pool.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The depth bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }

    /// Enqueues without blocking. Returns the new depth, or the item
    /// back inside the error when the queue is full or closed.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        let depth = state.items.len();
        drop(state);
        self.available.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available or the queue is both closed
    /// and drained (`None`). Items enqueued before a close are still
    /// delivered — close means *drain*, not *discard*.
    #[must_use]
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: future pushes fail, blocked poppers drain the
    /// backlog and then return `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn full_queue_rejects_instead_of_blocking() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_blocks_until_an_item_arrives() {
        let q = Arc::new(BoundedQueue::new(4));
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(42).unwrap();
        assert_eq!(popper.join().unwrap(), Some(42));
    }

    #[test]
    fn close_drains_the_backlog_then_returns_none() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err(PushError::Closed("c")));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let poppers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        for p in poppers {
            assert_eq!(p.join().unwrap(), None);
        }
    }

    #[test]
    fn zero_capacity_is_floored_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Err(PushError::Full(2)));
    }
}
