use crate::method::Method;
use adapipe_memory::StageMemory;
use adapipe_model::{LayerRange, ParallelConfig, TrainConfig};
use adapipe_partition::F1bBreakdown;
use adapipe_recompute::{RecomputeStrategy, StageCost};
use adapipe_units::MicroSecs;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One pipeline stage of a finished plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StagePlan {
    /// Layers assigned to the stage.
    pub range: LayerRange,
    /// Per-unit save/recompute decisions.
    pub strategy: RecomputeStrategy,
    /// Optimized forward/backward time and per-micro-batch footprint.
    pub cost: StageCost,
    /// Predicted memory breakdown on the stage's devices (static +
    /// buffer + live intermediates).
    pub memory: StageMemory,
}

impl StagePlan {
    /// Number of layers the stage holds (a Table 4 column).
    #[must_use]
    pub fn layer_count(&self) -> usize {
        self.range.len()
    }

    /// Number of saved computation units (the other Table 4 column).
    #[must_use]
    pub fn saved_units(&self) -> usize {
        self.strategy.saved_count()
    }

    /// Micro-step time `F + B` of the stage (Figure 9).
    #[must_use]
    pub fn micro_step(&self) -> MicroSecs {
        self.cost.time_f + self.cost.time_b
    }
}

/// A complete training plan: partitioning + per-stage recomputation, with
/// predictions from the analytic cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// How the plan was produced.
    pub method: Method,
    /// The 3D-parallel configuration it targets.
    pub parallel: ParallelConfig,
    /// The workload it targets.
    pub train: TrainConfig,
    /// Micro-batches per pipeline replica per iteration.
    pub n_microbatches: usize,
    /// Per-stage assignments, in pipeline order.
    pub stages: Vec<StagePlan>,
    /// Analytic 1F1B iteration breakdown. `None` for schedules the
    /// Equation (3) model does not cover (GPipe, Chimera) — use the
    /// simulator via [`Planner::evaluate`](crate::Planner::evaluate).
    pub predicted: Option<F1bBreakdown>,
}

impl Plan {
    /// Predicted iteration time from the analytic model, if available.
    #[must_use]
    pub fn predicted_time(&self) -> Option<MicroSecs> {
        self.predicted.map(|b| b.total())
    }

    /// The per-stage layer ranges.
    #[must_use]
    pub fn ranges(&self) -> Vec<LayerRange> {
        self.stages.iter().map(|s| s.range).collect()
    }

    /// Saved-unit counts per stage (Table 4 row).
    #[must_use]
    pub fn saved_units_per_stage(&self) -> Vec<usize> {
        self.stages.iter().map(StagePlan::saved_units).collect()
    }

    /// Layer counts per stage (Table 4 row).
    #[must_use]
    pub fn layers_per_stage(&self) -> Vec<usize> {
        self.stages.iter().map(StagePlan::layer_count).collect()
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} plan for {} {} (n={}):",
            self.method, self.parallel, self.train, self.n_microbatches
        )?;
        for (s, stage) in self.stages.iter().enumerate() {
            writeln!(
                f,
                "  stage {s}: layers {} ({} layers), {} saved units, \
                 F={:.1}ms B={:.1}ms, mem {}",
                stage.range,
                stage.layer_count(),
                stage.saved_units(),
                stage.cost.time_f.as_millis(),
                stage.cost.time_b.as_millis(),
                stage.memory,
            )?;
        }
        if let Some(bd) = self.predicted {
            writeln!(f, "  predicted: {bd}")?;
        }
        Ok(())
    }
}
