//! FLOP counts and activation-byte formulas per computation unit.
//!
//! All quantities are *per device of the tensor-parallel group* for one
//! micro-batch. Conventions:
//!
//! * Sequence parallelism (Korthikanti et al.) is always on: layer norms
//!   and residuals operate on `seq/t` shards, so their activations are a
//!   `1/t` slice; GEMM inputs are all-gathered to the full sequence and
//!   their *outputs* are sharded `1/t` along the hidden (or reduce-scattered
//!   along the sequence, same volume).
//! * FlashAttention is always on: the attention core saves only its output
//!   and a small fp32 log-sum-exp vector, never the `seq × seq` score
//!   matrix, and its FLOPs exploit causality (half the full rectangle).
//! * A GEMM of `m×k·k×n` costs `2·m·k·n` FLOPs forward and twice that
//!   backward (data-gradient plus weight-gradient GEMMs).

use adapipe_model::{ModelSpec, ParallelConfig, TrainConfig, UnitKind};
use adapipe_units::{Bytes, Flops};

/// Per-unit cost description in device-independent terms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitCost {
    /// Forward floating-point operations.
    pub flops_f: Flops,
    /// Backward floating-point operations (excluding any recomputation).
    pub flops_b: Flops,
    /// Bytes read + written by the forward kernel (roofline memory term).
    pub bytes_moved: Bytes,
    /// Bytes kept per micro-batch when the unit is configured *saved*:
    /// the output tensor plus any internally saved tensors.
    pub mem_saved: Bytes,
    /// Tensor-parallel collective payload triggered by the unit's
    /// forward pass: all-gather before a layer's first GEMM,
    /// reduce-scatter after its last. Zero for interior units.
    pub comm_bytes: Bytes,
}

/// Wraps the raw per-unit formulas into typed quantities. The analytic
/// formulas are born as `f64`; byte counts round down to whole bytes
/// exactly as the old untyped code's `as u64` casts did.
fn typed(
    flops_f: f64,
    flops_b: f64,
    bytes_moved: f64,
    mem_saved: f64,
    comm_bytes: f64,
) -> UnitCost {
    UnitCost {
        flops_f: Flops::new(flops_f),
        flops_b: Flops::new(flops_b),
        bytes_moved: Bytes::new(bytes_moved as u64),
        mem_saved: Bytes::new(mem_saved as u64),
        comm_bytes: Bytes::new(comm_bytes as u64),
    }
}

/// Activation element size tracking helper.
#[derive(Debug, Clone, Copy)]
struct Dims {
    /// Tokens in one micro-batch (`micro_batch * seq_len`).
    tokens: f64,
    seq: f64,
    hidden: f64,
    kv_hidden: f64,
    ffn_hidden: f64,
    vocab: f64,
    heads: f64,
    t: f64,
    dtype: f64,
}

impl Dims {
    fn new(model: &ModelSpec, parallel: &ParallelConfig, train: &TrainConfig) -> Self {
        Dims {
            tokens: (train.micro_batch() * train.seq_len()) as f64,
            seq: train.seq_len() as f64,
            hidden: model.hidden() as f64,
            kv_hidden: model.kv_hidden() as f64,
            ffn_hidden: model.ffn_hidden() as f64,
            vocab: model.vocab() as f64,
            heads: model.heads() as f64,
            t: parallel.tensor() as f64,
            dtype: model.dtype_bytes() as f64,
        }
    }

    /// Bytes of a `tokens × width` half-precision activation sharded 1/t.
    fn act(&self, width: f64) -> f64 {
        self.tokens * width * self.dtype / self.t
    }
}

/// Computes the cost of one `kind` unit for the given model and workload.
///
/// # Panics
///
/// Panics if `kind` does not belong to `model`'s feed-forward flavour
/// (e.g. asking for [`UnitKind::FfnGate`] on a GeLU model is a logic error
/// upstream).
#[must_use]
pub fn unit_cost(
    model: &ModelSpec,
    parallel: &ParallelConfig,
    train: &TrainConfig,
    kind: UnitKind,
) -> UnitCost {
    let d = Dims::new(model, parallel, train);
    match kind {
        UnitKind::Embedding => embedding(&d),
        UnitKind::AttnNorm | UnitKind::FfnNorm => norm(&d),
        UnitKind::QProj => gemm_unit(&d, d.hidden, d.hidden, GemmComm::AllGatherIn),
        UnitKind::KProj => gemm_unit(&d, d.hidden, d.kv_hidden, GemmComm::None),
        UnitKind::VProj => gemm_unit(&d, d.hidden, d.kv_hidden, GemmComm::None),
        UnitKind::CoreAttention => core_attention(&d),
        UnitKind::OutProj => gemm_unit(&d, d.hidden, d.hidden, GemmComm::ReduceScatterOut),
        UnitKind::FfnFc1 | UnitKind::FfnGate => {
            gemm_unit(&d, d.hidden, d.ffn_hidden, GemmComm::AllGatherIn)
        }
        UnitKind::FfnUp => gemm_unit(&d, d.hidden, d.ffn_hidden, GemmComm::None),
        UnitKind::FfnAct => elementwise(&d, d.ffn_hidden, 2.0),
        UnitKind::FfnActGated => elementwise(&d, d.ffn_hidden, 3.0),
        UnitKind::FfnFc2 | UnitKind::FfnDown => {
            gemm_unit(&d, d.ffn_hidden, d.hidden, GemmComm::ReduceScatterOut)
        }
        UnitKind::DecodingHead => decoding_head(&d),
    }
}

enum GemmComm {
    /// The unit's input must be all-gathered from sequence shards.
    AllGatherIn,
    /// The unit's output is reduce-scattered back to sequence shards.
    ReduceScatterOut,
    /// No collective attached (input already materialized by a sibling).
    None,
}

fn gemm_unit(d: &Dims, k: f64, n: f64, comm: GemmComm) -> UnitCost {
    let flops_f = 2.0 * d.tokens * k * n / d.t;
    // Input (full sequence after gather), weight shard, output shard.
    let bytes_moved = d.tokens * k * d.dtype + k * n * d.dtype / d.t + d.act(n);
    let comm_bytes = match comm {
        GemmComm::AllGatherIn => d.tokens * k * d.dtype,
        GemmComm::ReduceScatterOut => d.tokens * n * d.dtype,
        GemmComm::None => 0.0,
    };
    typed(flops_f, 2.0 * flops_f, bytes_moved, d.act(n), comm_bytes)
}

fn norm(d: &Dims) -> UnitCost {
    // LayerNorm / RMSNorm over the local sequence shard:
    // read input + residual, write output.
    typed(
        5.0 * d.tokens * d.hidden / d.t,
        7.0 * d.tokens * d.hidden / d.t,
        3.0 * d.act(d.hidden),
        d.act(d.hidden),
        0.0,
    )
}

fn elementwise(d: &Dims, width: f64, tensors_touched: f64) -> UnitCost {
    typed(
        4.0 * d.tokens * width / d.t,
        6.0 * d.tokens * width / d.t,
        tensors_touched * d.act(width),
        d.act(width),
        0.0,
    )
}

fn core_attention(d: &Dims) -> UnitCost {
    // Causal FlashAttention: QKᵀ and PV are each tokens·seq·hidden GEMMs,
    // halved by causal masking, over heads/t local heads.
    let flops_f = 2.0 * d.tokens * d.seq * d.hidden / d.t;
    // IO-aware kernel: streams Q, K, V once and writes O once.
    let bytes_moved = 2.0 * d.act(d.hidden) + 2.0 * d.act(d.kv_hidden);
    // Saved: output O plus the fp32 log-sum-exp per head per token.
    let lse = d.tokens * (d.heads / d.t) * 4.0;
    // FlashAttention backward re-streams the inputs and computes
    // dQ, dK, dV: ~2.5× the forward math.
    typed(
        flops_f,
        2.5 * flops_f,
        bytes_moved,
        d.act(d.hidden) + lse,
        0.0,
    )
}

fn embedding(d: &Dims) -> UnitCost {
    // Table lookup: bandwidth only. Saves its output (the stage-0 input).
    typed(0.0, 0.0, 2.0 * d.act(d.hidden), d.act(d.hidden), 0.0)
}

fn decoding_head(d: &Dims) -> UnitCost {
    // Final norm + vocab projection + fused softmax/cross-entropy.
    let flops_f = 2.0 * d.tokens * d.hidden * d.vocab / d.t;
    let bytes_moved = d.tokens * d.hidden * d.dtype
        + d.hidden * d.vocab * d.dtype / d.t
        + d.tokens * d.vocab * 4.0 / d.t;
    // The fused loss keeps fp32 softmax statistics for backward.
    typed(
        flops_f,
        2.0 * flops_f,
        bytes_moved,
        d.tokens * d.vocab * 4.0 / d.t,
        d.tokens * d.hidden * d.dtype,
    )
}

/// Bytes of the activation tensor crossing a pipeline-stage boundary for
/// one micro-batch (`tokens × hidden`, sharded over the TP group since
/// each rank forwards its own sequence shard).
#[must_use]
pub fn boundary_bytes(model: &ModelSpec, parallel: &ParallelConfig, train: &TrainConfig) -> Bytes {
    let d = Dims::new(model, parallel, train);
    Bytes::new(d.act(d.hidden) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapipe_model::presets;

    fn setup() -> (ModelSpec, ParallelConfig, TrainConfig) {
        (
            presets::gpt3_175b(),
            ParallelConfig::new(8, 8, 1).unwrap(),
            TrainConfig::new(1, 4096, 128).unwrap(),
        )
    }

    #[test]
    fn qproj_flops_match_closed_form() {
        let (m, p, t) = setup();
        let c = unit_cost(&m, &p, &t, UnitKind::QProj);
        let expect = 2.0 * 4096.0 * 12288.0 * 12288.0 / 8.0;
        assert!((c.flops_f.get() - expect).abs() / expect < 1e-12);
        assert_eq!(c.flops_b, 2.0 * c.flops_f);
    }

    #[test]
    fn kv_proj_cheaper_under_gqa() {
        let m = presets::llama2_70b();
        let p = ParallelConfig::new(8, 8, 1).unwrap();
        let t = TrainConfig::new(1, 4096, 128).unwrap();
        let q = unit_cost(&m, &p, &t, UnitKind::QProj);
        let k = unit_cost(&m, &p, &t, UnitKind::KProj);
        assert!(k.flops_f.get() < q.flops_f.get() / 4.0);
        assert!(k.mem_saved < q.mem_saved);
    }

    #[test]
    fn core_attention_scales_quadratically_with_seq() {
        let m = presets::gpt3_175b();
        let p = ParallelConfig::new(8, 8, 1).unwrap();
        let t1 = TrainConfig::new(1, 4096, 128).unwrap();
        let t2 = TrainConfig::new(1, 8192, 64).unwrap();
        let c1 = unit_cost(&m, &p, &t1, UnitKind::CoreAttention);
        let c2 = unit_cost(&m, &p, &t2, UnitKind::CoreAttention);
        assert!((c2.flops_f / c1.flops_f - 4.0).abs() < 1e-9);
        // ...but its saved memory only linearly (FlashAttention).
        assert!((c2.mem_saved.as_f64() / c1.mem_saved.as_f64() - 2.0).abs() < 0.01);
    }

    #[test]
    fn activation_memory_is_sharded_by_tp() {
        let m = presets::gpt3_175b();
        let tr = TrainConfig::new(1, 4096, 128).unwrap();
        let p1 = ParallelConfig::new(1, 8, 8).unwrap();
        let p8 = ParallelConfig::new(8, 8, 1).unwrap();
        let c1 = unit_cost(&m, &p1, &tr, UnitKind::FfnFc1);
        let c8 = unit_cost(&m, &p8, &tr, UnitKind::FfnFc1);
        assert_eq!(c1.mem_saved, 8 * c8.mem_saved);
    }

    #[test]
    fn collectives_attach_to_boundary_gemms_only() {
        let (m, p, t) = setup();
        assert!(unit_cost(&m, &p, &t, UnitKind::QProj).comm_bytes > Bytes::ZERO);
        assert!(unit_cost(&m, &p, &t, UnitKind::OutProj).comm_bytes > Bytes::ZERO);
        assert_eq!(
            unit_cost(&m, &p, &t, UnitKind::KProj).comm_bytes,
            Bytes::ZERO
        );
        assert_eq!(
            unit_cost(&m, &p, &t, UnitKind::CoreAttention).comm_bytes,
            Bytes::ZERO
        );
        assert_eq!(
            unit_cost(&m, &p, &t, UnitKind::AttnNorm).comm_bytes,
            Bytes::ZERO
        );
    }

    #[test]
    fn ffn_act_memory_is_4x_hidden_for_gpt() {
        let (m, p, t) = setup();
        let act = unit_cost(&m, &p, &t, UnitKind::FfnAct);
        let nrm = unit_cost(&m, &p, &t, UnitKind::AttnNorm);
        assert_eq!(act.mem_saved, 4 * nrm.mem_saved);
    }

    #[test]
    fn swiglu_units_cost_like_their_gelu_counterparts() {
        let m = presets::llama2_70b();
        let p = ParallelConfig::new(8, 8, 1).unwrap();
        let t = TrainConfig::new(1, 4096, 128).unwrap();
        let gate = unit_cost(&m, &p, &t, UnitKind::FfnGate);
        let up = unit_cost(&m, &p, &t, UnitKind::FfnUp);
        let down = unit_cost(&m, &p, &t, UnitKind::FfnDown);
        // Gate and up are identical GEMMs; only gate carries the
        // all-gather.
        assert_eq!(gate.flops_f, up.flops_f);
        assert_eq!(gate.mem_saved, up.mem_saved);
        assert!(gate.comm_bytes > Bytes::ZERO);
        assert_eq!(up.comm_bytes, Bytes::ZERO);
        // Down projects back to hidden: smaller output, reduce-scatter.
        assert!(down.mem_saved < gate.mem_saved);
        assert!(down.comm_bytes > Bytes::ZERO);
        // Gated activation touches three tensors of ffn width.
        let act = unit_cost(&m, &p, &t, UnitKind::FfnActGated);
        assert_eq!(act.mem_saved, gate.mem_saved);
        assert!(act.bytes_moved.as_f64() > 2.9 * gate.mem_saved.as_f64());
    }

    #[test]
    fn decoding_head_dominates_any_single_unit() {
        let (m, p, t) = setup();
        let head = unit_cost(&m, &p, &t, UnitKind::DecodingHead);
        let fc1 = unit_cost(&m, &p, &t, UnitKind::FfnFc1);
        // vocab 50257 >> 4h: the head GEMM out-flops the FFN.
        assert!(head.flops_f > fc1.flops_f);
        // And it pins fp32 softmax statistics.
        let expect = Bytes::new(4096 * 50257 * 4 / 8);
        assert_eq!(head.mem_saved, expect);
    }

    #[test]
    fn boundary_bytes_match_hidden_activation() {
        let (m, p, t) = setup();
        assert_eq!(boundary_bytes(&m, &p, &t), Bytes::new(4096 * 12288 * 2 / 8));
    }
}
