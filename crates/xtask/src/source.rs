//! Source preparation for the lint pass: comment/string masking,
//! `#[cfg(test)]` region detection and waiver-directive parsing.
//!
//! The linter never parses Rust properly — it scans a *masked* copy of
//! each file in which comment and string-literal contents are blanked
//! out (newlines preserved), so token searches cannot trip over prose
//! or string payloads. Waiver directives are read from the comments
//! before they are blanked.

use std::collections::HashSet;
use std::path::PathBuf;

/// A waiver parsed from a `lint: allow(...)` comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Lint rule names the waiver covers.
    pub rules: HashSet<String>,
    /// Whether the author wrote a justification after the rule list.
    pub has_reason: bool,
    /// 0-based line the directive appears on.
    pub line: usize,
    /// Whether the waiver covers the whole file.
    pub file_scope: bool,
}

/// One source file, masked and annotated for the lint rules.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root (for diagnostics).
    pub path: PathBuf,
    /// Masked text: identical shape to the original, with comment and
    /// string contents replaced by spaces.
    pub masked: String,
    /// Masked text split into lines (same indices as the original).
    pub lines: Vec<String>,
    /// `test_lines[i]` — line `i` is inside a `#[cfg(test)]` block.
    pub test_lines: Vec<bool>,
    /// All waivers found in comments.
    pub waivers: Vec<Waiver>,
}

impl SourceFile {
    /// Masks `text` and extracts waivers and test regions.
    pub fn parse(path: PathBuf, text: &str) -> SourceFile {
        let (masked, comments) = mask(text);
        let lines: Vec<String> = masked.lines().map(str::to_string).collect();
        let test_lines = find_test_regions(&masked, lines.len());
        let waivers = comments
            .iter()
            .filter_map(|(line, text)| parse_waiver(*line, text))
            .collect();
        SourceFile {
            path,
            masked,
            lines,
            test_lines,
            waivers,
        }
    }

    /// Whether `rule` is waived on `line` (0-based): by a file-scope
    /// waiver, or by a line waiver whose directive is on the same line or
    /// whose covered line — the first non-blank code line after the
    /// directive's comment block — is `line`.
    pub fn is_waived(&self, rule: &str, line: usize) -> bool {
        self.waivers.iter().any(|w| {
            w.rules.contains(rule)
                && (w.file_scope || w.line == line || self.waiver_target(w) == Some(line))
        })
    }

    /// The code line a line-scope waiver covers: the first line after the
    /// directive whose masked text is non-blank (comment continuation
    /// lines mask to blanks and are skipped).
    fn waiver_target(&self, w: &Waiver) -> Option<usize> {
        self.lines
            .iter()
            .enumerate()
            .skip(w.line + 1)
            .find(|(_, l)| !l.trim().is_empty())
            .map(|(i, _)| i)
    }
}

/// Blanks comment and string contents, returning the masked text and the
/// comments as `(0-based start line, text)` pairs.
#[allow(clippy::too_many_lines)]
fn mask(text: &str) -> (String, Vec<(usize, String)>) {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
    }
    let mut st = St::Code;
    let mut out = String::with_capacity(text.len());
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut comment = String::new();
    let mut comment_line = 0usize;
    let mut line = 0usize;
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            line += 1;
        }
        match st {
            St::Code => {
                if c == '/' && next == Some('/') {
                    st = St::LineComment;
                    comment.clear();
                    comment_line = line;
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    st = St::BlockComment(1);
                    comment.clear();
                    comment_line = line;
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '"' {
                    st = St::Str;
                    out.push(' ');
                    i += 1;
                    continue;
                }
                // Raw strings: r"..." / r#"..."# / br#"..."# — scan the
                // hash run between `r` and the opening quote.
                if (c == 'r' || (c == 'b' && next == Some('r'))) && !prev_is_ident(&chars, i) {
                    let start = if c == 'b' { i + 2 } else { i + 1 };
                    let mut hashes = 0usize;
                    while chars.get(start + hashes) == Some(&'#') {
                        hashes += 1;
                    }
                    if chars.get(start + hashes) == Some(&'"') {
                        for _ in i..=start + hashes {
                            out.push(' ');
                        }
                        i = start + hashes + 1;
                        st = St::RawStr(hashes);
                        continue;
                    }
                }
                // Char literals vs lifetimes: `'x'` / `'\n'` are
                // literals; `'a` followed by anything but a closing
                // quote is a lifetime and passes through.
                if c == '\'' {
                    if next == Some('\\') {
                        let mut j = i + 2;
                        while j < chars.len() && chars[j] != '\'' {
                            j += 1;
                        }
                        for _ in i..=j.min(chars.len() - 1) {
                            out.push(' ');
                        }
                        i = j + 1;
                        continue;
                    }
                    if let Some(n) = next {
                        if chars.get(i + 2) == Some(&'\'') && n != '\'' {
                            out.push_str("   ");
                            i += 3;
                            continue;
                        }
                    }
                }
                out.push(c);
                i += 1;
            }
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                    comments.push((comment_line, comment.clone()));
                    out.push('\n');
                } else {
                    comment.push(c);
                    out.push(' ');
                }
                i += 1;
            }
            St::BlockComment(depth) => {
                if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    if depth == 1 {
                        st = St::Code;
                        comments.push((comment_line, comment.clone()));
                    } else {
                        st = St::BlockComment(depth - 1);
                    }
                    out.push_str("  ");
                    i += 2;
                } else {
                    comment.push(c);
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    out.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    st = St::Code;
                    out.push(' ');
                    i += 1;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' && (0..hashes).all(|k| chars.get(i + 1 + k) == Some(&'#')) {
                    st = St::Code;
                    for _ in 0..=hashes {
                        out.push(' ');
                    }
                    i += hashes + 1;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
        }
    }
    if st == St::LineComment {
        comments.push((comment_line, comment));
    }
    (out, comments)
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0
        && chars
            .get(i - 1)
            .is_some_and(|c| c.is_alphanumeric() || *c == '_')
}

/// Marks every line inside a `#[cfg(test)]`-attributed block.
fn find_test_regions(masked: &str, n_lines: usize) -> Vec<bool> {
    let mut test = vec![false; n_lines];
    let bytes: Vec<char> = masked.chars().collect();
    let needle: Vec<char> = "#[cfg(test)]".chars().collect();
    let mut line_of = Vec::with_capacity(bytes.len());
    let mut line = 0usize;
    for &c in &bytes {
        line_of.push(line);
        if c == '\n' {
            line += 1;
        }
    }
    let mut i = 0usize;
    while i + needle.len() <= bytes.len() {
        if bytes[i..i + needle.len()] != needle[..] {
            i += 1;
            continue;
        }
        // Find the block opened after the attribute and span it.
        let mut j = i + needle.len();
        while j < bytes.len() && bytes[j] != '{' && bytes[j] != ';' {
            j += 1;
        }
        if j >= bytes.len() || bytes[j] == ';' {
            i = j;
            continue;
        }
        let mut depth = 0i64;
        while j < bytes.len() {
            match bytes[j] {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let first = line_of[i];
        let last = line_of[j.min(bytes.len() - 1)];
        for t in test.iter_mut().take(last + 1).skip(first) {
            *t = true;
        }
        i = j + 1;
    }
    test
}

/// Parses a `lint: allow(rule, ...) — reason` or
/// `lint: allow-file(rule, ...) — reason` directive from a comment.
fn parse_waiver(line: usize, comment: &str) -> Option<Waiver> {
    let trimmed = comment.trim();
    let rest = trimmed.strip_prefix("lint:")?.trim_start();
    let (file_scope, rest) = match rest.strip_prefix("allow-file(") {
        Some(r) => (true, r),
        None => (false, rest.strip_prefix("allow(")?),
    };
    let close = rest.find(')')?;
    let rules: HashSet<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let reason = rest[close + 1..].trim();
    let has_reason = reason
        .trim_start_matches(['—', '-', ':', ' '])
        .chars()
        .any(char::is_alphanumeric);
    Some(Waiver {
        rules,
        has_reason,
        line,
        file_scope,
    })
}

/// A crate in `crates/`, classified for the lint pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateKind {
    /// Library crate: all rules apply to its `src/` (minus tests/bins).
    Library,
    /// The benchmark harness crate: panic-freedom rules are waived for
    /// the whole crate (it is experiment-driver code, the moral
    /// equivalent of `benches/`), but the `unsafe-header` rule applies.
    BenchHarness,
    /// Binary-only crate (no `src/lib.rs`): exempt, like `src/bin/`.
    Binary,
}

/// Discovers the workspace's crates and their kinds.
pub fn discover_crates(root: &std::path::Path) -> Vec<(PathBuf, CrateKind)> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        return out;
    };
    let mut dirs: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    for dir in dirs {
        if !dir.join("src").join("lib.rs").is_file() {
            out.push((dir, CrateKind::Binary));
            continue;
        }
        let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let kind = if name.ends_with("-bench") {
            CrateKind::BenchHarness
        } else {
            CrateKind::Library
        };
        out.push((dir, kind));
    }
    out
}

/// Collects the `.rs` files of one crate's `src/`, excluding `src/bin/`
/// and `benches/`/`tests/` directories (allowlisted like `#[cfg(test)]`).
pub fn crate_sources(crate_dir: &std::path::Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![crate_dir.join("src")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if !matches!(name, "bin" | "benches" | "tests") {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(text: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("test.rs"), text)
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = src("let x = \"a.unwrap()\"; // .unwrap() in prose\nx.unwrap();\n");
        assert!(!f.lines[0].contains("unwrap"), "{}", f.lines[0]);
        assert!(f.lines[1].contains(".unwrap()"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = src("let x = r#\"panic!(\"no\")\"#;\nlet y = 1;\n");
        assert!(!f.lines[0].contains("panic"), "{}", f.lines[0]);
    }

    #[test]
    fn char_literals_and_lifetimes_survive() {
        let f = src("fn f<'a>(x: &'a str) -> char { '\"' }\nlet y = x.unwrap();\n");
        assert!(f.lines[0].contains("fn f<'a>"), "{}", f.lines[0]);
        assert!(f.lines[1].contains("unwrap"), "{}", f.lines[1]);
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let f = src("fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n");
        assert_eq!(f.test_lines, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn waivers_parse_with_and_without_reason() {
        let f = src(
            "// lint: allow(unwrap) — engine invariant: heap is non-empty\nx.unwrap();\n\
             // lint: allow(expect)\ny.expect(\"\");\n",
        );
        assert!(f.is_waived("unwrap", 1));
        assert!(!f.is_waived("unwrap", 3));
        assert!(f.is_waived("expect", 3));
        let unjustified: Vec<usize> = f
            .waivers
            .iter()
            .filter(|w| !w.has_reason)
            .map(|w| w.line)
            .collect();
        assert_eq!(unjustified, vec![2]);
    }

    #[test]
    fn file_scope_waiver_covers_everything() {
        let f = src("// lint: allow-file(index) — fixed-shape outputs\nfn f() {}\nlet x = a[0];\n");
        assert!(f.is_waived("index", 2));
        assert!(!f.is_waived("unwrap", 2));
    }
}
