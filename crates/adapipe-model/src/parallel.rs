use crate::error::ConfigError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 3D-parallel configuration: tensor-, pipeline- and data-parallel sizes.
///
/// These are the `t`, `p`, `d` of Table 1 in the paper. The total number of
/// devices used by a job is `t * p * d`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParallelConfig {
    tensor: usize,
    pipeline: usize,
    data: usize,
}

impl ParallelConfig {
    /// Creates a configuration with tensor-parallel size `tensor`,
    /// pipeline-parallel size `pipeline` and data-parallel size `data`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroField`] if any size is zero.
    pub fn new(tensor: usize, pipeline: usize, data: usize) -> Result<Self, ConfigError> {
        for (field, v) in [("tensor", tensor), ("pipeline", pipeline), ("data", data)] {
            if v == 0 {
                return Err(ConfigError::ZeroField { field });
            }
        }
        Ok(ParallelConfig {
            tensor,
            pipeline,
            data,
        })
    }

    /// Tensor-parallel size `t`.
    #[must_use]
    pub fn tensor(&self) -> usize {
        self.tensor
    }

    /// Pipeline-parallel size `p` (number of pipeline stages).
    #[must_use]
    pub fn pipeline(&self) -> usize {
        self.pipeline
    }

    /// Data-parallel size `d`.
    #[must_use]
    pub fn data(&self) -> usize {
        self.data
    }

    /// Total devices used: `t * p * d`.
    #[must_use]
    pub fn devices(&self) -> usize {
        self.tensor * self.pipeline * self.data
    }

    /// Enumerates every `(t, p, d)` combination that uses exactly
    /// `devices` devices, with `t <= max_tensor` and `p >= min_pipeline`.
    ///
    /// This is the strategy iteration of §7.1 (Table 3): the paper limits
    /// the tensor-parallel size to the number of accelerators in one node
    /// because cross-node tensor parallelism is prohibitively expensive.
    #[must_use]
    pub fn enumerate(devices: usize, max_tensor: usize, min_pipeline: usize) -> Vec<Self> {
        let mut out = Vec::new();
        let mut t = 1;
        while t <= max_tensor && t <= devices {
            if devices.is_multiple_of(t) {
                let rest = devices / t;
                let mut p = min_pipeline.max(1);
                while p <= rest {
                    if rest.is_multiple_of(p) {
                        let d = rest / p;
                        out.push(ParallelConfig {
                            tensor: t,
                            pipeline: p,
                            data: d,
                        });
                    }
                    p += 1;
                }
            }
            t *= 2;
        }
        out
    }
}

impl fmt::Display for ParallelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(t={}, p={}, d={})",
            self.tensor, self.pipeline, self.data
        )
    }
}

/// A training workload: micro-batch size, sequence length and global batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TrainConfig {
    micro_batch: usize,
    seq_len: usize,
    global_batch: usize,
}

impl TrainConfig {
    /// Creates a workload description.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroField`] if any parameter is zero.
    pub fn new(
        micro_batch: usize,
        seq_len: usize,
        global_batch: usize,
    ) -> Result<Self, ConfigError> {
        for (field, v) in [
            ("micro_batch", micro_batch),
            ("seq_len", seq_len),
            ("global_batch", global_batch),
        ] {
            if v == 0 {
                return Err(ConfigError::ZeroField { field });
            }
        }
        Ok(TrainConfig {
            micro_batch,
            seq_len,
            global_batch,
        })
    }

    /// Micro-batch size `b` (samples per pipeline injection).
    #[must_use]
    pub fn micro_batch(&self) -> usize {
        self.micro_batch
    }

    /// Sequence length in tokens.
    #[must_use]
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Global batch size (samples per optimizer step across all replicas).
    #[must_use]
    pub fn global_batch(&self) -> usize {
        self.global_batch
    }

    /// Number of micro-batches `n` each pipeline replica processes per
    /// iteration: `global_batch / (data * micro_batch)`.
    ///
    /// Saturates at 1 if the global batch does not cover every replica;
    /// use [`TrainConfig::validate_for`] to reject such configurations.
    #[must_use]
    pub fn micro_batches(&self, parallel: &ParallelConfig) -> usize {
        (self.global_batch / (parallel.data() * self.micro_batch)).max(1)
    }

    /// Checks that the global batch divides evenly over the data-parallel
    /// replicas and that each replica receives at least `pipeline`
    /// micro-batches (1F1B needs `n >= p` to fill the pipe).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::BatchNotDivisible`] when the division is not
    /// exact, and [`ConfigError::NotDivisible`] when `n < p`.
    pub fn validate_for(&self, parallel: &ParallelConfig) -> Result<(), ConfigError> {
        let divisor = parallel.data() * self.micro_batch;
        if !self.global_batch.is_multiple_of(divisor) {
            return Err(ConfigError::BatchNotDivisible {
                global_batch: self.global_batch,
                divisor,
            });
        }
        let n = self.global_batch / divisor;
        if n < parallel.pipeline() {
            return Err(ConfigError::NotDivisible {
                what: "micro-batches per replica must cover the pipeline depth",
                value: n,
                by: parallel.pipeline(),
            });
        }
        Ok(())
    }

    /// Tokens processed per iteration across the whole job.
    #[must_use]
    pub fn tokens_per_iteration(&self) -> usize {
        self.global_batch * self.seq_len
    }
}

impl fmt::Display for TrainConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(b={}, seq={}, gbs={})",
            self.micro_batch, self.seq_len, self.global_batch
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn devices_is_product() {
        let p = ParallelConfig::new(8, 8, 2).unwrap();
        assert_eq!(p.devices(), 128);
    }

    #[test]
    fn zero_size_rejected() {
        assert!(ParallelConfig::new(0, 8, 1).is_err());
        assert!(ParallelConfig::new(8, 0, 1).is_err());
        assert!(ParallelConfig::new(8, 8, 0).is_err());
    }

    #[test]
    fn enumerate_covers_table3_strategies() {
        // Cluster A GPT-3 runs on 64 GPUs with TP <= 8.
        let strategies = ParallelConfig::enumerate(64, 8, 2);
        let as_tuples: Vec<(usize, usize, usize)> = strategies
            .iter()
            .map(|s| (s.tensor(), s.pipeline(), s.data()))
            .collect();
        for expected in [
            (1, 32, 2),
            (2, 16, 2),
            (2, 32, 1),
            (4, 8, 2),
            (4, 16, 1),
            (8, 4, 2),
            (8, 8, 1),
        ] {
            assert!(as_tuples.contains(&expected), "missing {expected:?}");
        }
        for s in &strategies {
            assert_eq!(s.devices(), 64);
            assert!(s.tensor() <= 8);
            assert!(s.pipeline() >= 2);
        }
    }

    #[test]
    fn micro_batch_count_matches_paper() {
        // GPT-3 on cluster A: gbs=128, b=1, d=2 -> n=64 per replica.
        let parallel = ParallelConfig::new(4, 8, 2).unwrap();
        let train = TrainConfig::new(1, 4096, 128).unwrap();
        assert_eq!(train.micro_batches(&parallel), 64);
        train.validate_for(&parallel).unwrap();
    }

    #[test]
    fn validate_rejects_uneven_batch() {
        let parallel = ParallelConfig::new(1, 2, 3).unwrap();
        let train = TrainConfig::new(1, 128, 8).unwrap();
        assert!(matches!(
            train.validate_for(&parallel),
            Err(ConfigError::BatchNotDivisible { .. })
        ));
    }

    #[test]
    fn validate_rejects_underfilled_pipeline() {
        let parallel = ParallelConfig::new(1, 8, 1).unwrap();
        let train = TrainConfig::new(1, 128, 4).unwrap();
        assert!(train.validate_for(&parallel).is_err());
    }

    #[test]
    fn tokens_per_iteration_is_constant_across_paper_configs() {
        // The paper halves the global batch when doubling sequence length.
        let a = TrainConfig::new(1, 4096, 128).unwrap();
        let b = TrainConfig::new(1, 8192, 64).unwrap();
        let c = TrainConfig::new(1, 16384, 32).unwrap();
        assert_eq!(a.tokens_per_iteration(), b.tokens_per_iteration());
        assert_eq!(b.tokens_per_iteration(), c.tokens_per_iteration());
    }
}
