//! Figure 2: the GPipe vs 1F1B scheduling mechanisms on a 3-stage,
//! 6-micro-batch pipeline — rendered as ASCII timelines, with the
//! bubble and peak-memory comparison the figure illustrates.

use adapipe_bench::emit_bench_json;
use adapipe_obs::{keys, Recorder};
use adapipe_sim::{render, schedule, simulate_traced, SimReport, StageExec};
use adapipe_units::{Bytes, MicroSecs};

fn render_report(report: &SimReport) {
    print!(
        "{}",
        render::render_ascii(report, report.makespan.as_micros().ceil() as usize)
    );
    println!(
        "makespan {:.1}, bubble ratio {:.1}%, peak activations per stage: {:?}\n",
        report.makespan.as_micros(),
        100.0 * report.bubble_ratio(),
        report
            .devices
            .iter()
            .map(|d| d.peak_dynamic_bytes.get())
            .collect::<Vec<_>>()
    );
}

fn main() {
    let rec = Recorder::new();
    let t0 = std::time::Instant::now();
    // Unit-cost stages: F = 1, B = 2, one activation "byte" per
    // micro-batch so peaks read as micro-batch counts.
    let stages = vec![
        StageExec {
            time_f: MicroSecs::new(1.0),
            time_b: MicroSecs::new(2.0),
            saved_bytes: Bytes::new(1),
            buffer_bytes: Bytes::ZERO
        };
        3
    ];
    let n = 6;

    println!("== Figure 2 (a): GPipe — all forwards, then all backwards ==");
    let gp = simulate_traced(&schedule::gpipe(&stages, n, MicroSecs::ZERO), &rec);
    render_report(&gp);

    println!("== Figure 2 (b): 1F1B — warmup / steady / ending ==");
    let f1b = simulate_traced(&schedule::one_f_one_b(&stages, n, MicroSecs::ZERO), &rec);
    render_report(&f1b);

    println!(
        "Expected shape: identical makespan and bubbles (2(p-1) slots), but GPipe \
         holds all {n} micro-batches while 1F1B stage s holds only p - s."
    );
    assert!((gp.makespan - f1b.makespan).abs() < MicroSecs::new(1e-9));
    assert!(f1b.max_peak_dynamic_bytes() < gp.max_peak_dynamic_bytes());

    rec.gauge(keys::BENCH_WALL_S, t0.elapsed().as_secs_f64());
    emit_bench_json("fig02_schedules", &rec, &[("figure", "2")]);
}
