//! Plan persistence: a line-oriented text format (one `key = value` per
//! line, one `stage` block per pipeline stage) that round-trips plans
//! exactly — including f64 times, via shortest-round-trip formatting.
//!
//! The search engine and the execution engine of §6 are separate
//! programs in practice; this format is the contract between them:
//! search once, save the plan, execute it many times.
//!
//! # Versions and units
//!
//! * **v2** (current) — the header is followed by a `units` metadata
//!   block declaring the dimensions of every quantity in the file
//!   (`units.time = us`, `units.bytes = B`). Times are microseconds,
//!   matching [`MicroSecs`]. A v2 file declaring any *other* unit is
//!   rejected with [`PlanParseError::UnitMismatch`] (surfaced by
//!   `adapipe verify` as the `unit-mismatch` diagnostic) rather than
//!   silently reinterpreted — the whole point of carrying units in the
//!   artifact.
//! * **v1** (legacy) — no units block; times were plain seconds. Still
//!   readable: [`from_text`] converts on load and
//!   [`from_text_with_warnings`] reports the conversion so callers can
//!   nudge users to re-save.

// lint: allow-file(swallowed-result): fmt::Write into a String cannot fail
use crate::method::Method;
use crate::plan::{Plan, StagePlan};
use adapipe_memory::StageMemory;
use adapipe_model::{LayerRange, ParallelConfig, TrainConfig};
use adapipe_partition::F1bBreakdown;
use adapipe_recompute::{RecomputeStrategy, StageCost};
use adapipe_units::{Bytes, MicroSecs};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;
use std::str::FromStr;

/// Error from [`from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlanParseError {
    /// The header line is missing or names an unknown version.
    BadHeader,
    /// A required key is absent.
    Missing(&'static str),
    /// A line is not `key = value`.
    BadLine(String),
    /// A value failed to parse.
    BadValue {
        /// The key in question.
        key: String,
        /// The raw value.
        value: String,
    },
    /// The reconstructed plan is internally inconsistent.
    Inconsistent(String),
    /// The file's `units` block contradicts the units this build stores
    /// (`unit-mismatch` in the diagnostic catalog).
    UnitMismatch {
        /// The `units.*` key in question.
        key: String,
        /// The unit the file declares.
        declared: String,
        /// The unit this build expects.
        expected: &'static str,
    },
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanParseError::BadHeader => write!(f, "missing or unsupported plan header"),
            PlanParseError::Missing(key) => write!(f, "missing key `{key}`"),
            PlanParseError::BadLine(line) => write!(f, "malformed line `{line}`"),
            PlanParseError::BadValue { key, value } => {
                write!(f, "bad value for `{key}`: `{value}`")
            }
            PlanParseError::Inconsistent(msg) => write!(f, "inconsistent plan: {msg}"),
            PlanParseError::UnitMismatch {
                key,
                declared,
                expected,
            } => write!(
                f,
                "unit-mismatch: `{key} = {declared}` contradicts this build's `{expected}` \
                 (refusing to reinterpret quantities)"
            ),
        }
    }
}

impl Error for PlanParseError {}

impl FromStr for Method {
    type Err = PlanParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Method::all()
            .into_iter()
            .find(|m| m.to_string() == s)
            .ok_or_else(|| PlanParseError::BadValue {
                key: "method".into(),
                value: s.into(),
            })
    }
}

/// Serializes `plan` to the current (v2) text format: all times in
/// microseconds, all sizes in bytes, declared up front in the `units`
/// block.
#[must_use]
pub fn to_text(plan: &Plan) -> String {
    let mut out = String::from("adapipe-plan v2\n");
    let _ = writeln!(out, "units.time = {TIME_UNIT}");
    let _ = writeln!(out, "units.bytes = {BYTES_UNIT}");
    let _ = writeln!(out, "method = {}", plan.method);
    let _ = writeln!(out, "tensor = {}", plan.parallel.tensor());
    let _ = writeln!(out, "pipeline = {}", plan.parallel.pipeline());
    let _ = writeln!(out, "data = {}", plan.parallel.data());
    let _ = writeln!(out, "micro_batch = {}", plan.train.micro_batch());
    let _ = writeln!(out, "seq_len = {}", plan.train.seq_len());
    let _ = writeln!(out, "global_batch = {}", plan.train.global_batch());
    let _ = writeln!(out, "n_microbatches = {}", plan.n_microbatches);
    if let Some(bd) = plan.predicted {
        // `{:?}` prints the shortest representation that parses back to
        // the identical f64.
        let _ = writeln!(
            out,
            "predicted = {:?} {:?} {:?} {:?}",
            bd.warmup.as_micros(),
            bd.steady.as_micros(),
            bd.ending.as_micros(),
            bd.bottleneck.as_micros()
        );
    }
    for (s, stage) in plan.stages.iter().enumerate() {
        let _ = writeln!(out, "stage = {s}");
        let _ = writeln!(out, "  layers = {} {}", stage.range.first, stage.range.last);
        let _ = writeln!(out, "  time_f = {:?}", stage.cost.time_f.as_micros());
        let _ = writeln!(out, "  time_b = {:?}", stage.cost.time_b.as_micros());
        let _ = writeln!(
            out,
            "  saved_bytes = {}",
            stage.cost.saved_bytes_per_mb.get()
        );
        let _ = writeln!(out, "  static_bytes = {}", stage.memory.static_bytes.get());
        let _ = writeln!(out, "  buffer_bytes = {}", stage.memory.buffer_bytes.get());
        let _ = writeln!(
            out,
            "  intermediate_bytes = {}",
            stage.memory.intermediate_bytes.get()
        );
        let flags: String = stage
            .strategy
            .iter()
            .map(|s| if s { '1' } else { '0' })
            .collect();
        let _ = writeln!(out, "  saved = {flags}");
    }
    out
}

/// The time unit the current format stores: microseconds.
pub const TIME_UNIT: &str = "us";
/// The byte unit the current format stores: plain bytes.
pub const BYTES_UNIT: &str = "B";

/// File format versions [`from_text`] understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Version {
    /// Legacy: times in seconds, no units block.
    V1,
    /// Current: explicit units block, times in microseconds.
    V2,
}

impl Version {
    /// Converts a raw time value from the file into the in-memory unit.
    fn time(self, raw: f64) -> MicroSecs {
        match self {
            Version::V1 => MicroSecs::from_secs(raw),
            Version::V2 => MicroSecs::new(raw),
        }
    }
}

/// Key/value accumulator for one stage block.
#[derive(Default)]
struct StageFields {
    layers: Option<(usize, usize)>,
    time_f: Option<f64>,
    time_b: Option<f64>,
    saved_bytes: Option<u64>,
    static_bytes: Option<u64>,
    buffer_bytes: Option<u64>,
    intermediate_bytes: Option<u64>,
    saved: Option<Vec<bool>>,
}

impl StageFields {
    fn build(self, version: Version) -> Result<StagePlan, PlanParseError> {
        let (first, last) = self.layers.ok_or(PlanParseError::Missing("layers"))?;
        if first > last {
            return Err(PlanParseError::Inconsistent(format!(
                "layer range {first}..{last}"
            )));
        }
        let flags = self.saved.ok_or(PlanParseError::Missing("saved"))?;
        Ok(StagePlan {
            range: LayerRange::new(first, last),
            strategy: RecomputeStrategy::from_raw_flags(flags),
            cost: StageCost {
                time_f: version.time(self.time_f.ok_or(PlanParseError::Missing("time_f"))?),
                time_b: version.time(self.time_b.ok_or(PlanParseError::Missing("time_b"))?),
                saved_bytes_per_mb: Bytes::new(
                    self.saved_bytes
                        .ok_or(PlanParseError::Missing("saved_bytes"))?,
                ),
            },
            memory: StageMemory {
                static_bytes: Bytes::new(
                    self.static_bytes
                        .ok_or(PlanParseError::Missing("static_bytes"))?,
                ),
                buffer_bytes: Bytes::new(
                    self.buffer_bytes
                        .ok_or(PlanParseError::Missing("buffer_bytes"))?,
                ),
                intermediate_bytes: Bytes::new(
                    self.intermediate_bytes
                        .ok_or(PlanParseError::Missing("intermediate_bytes"))?,
                ),
            },
        })
    }
}

fn parse<T: FromStr>(key: &str, value: &str) -> Result<T, PlanParseError> {
    value.parse().map_err(|_| PlanParseError::BadValue {
        key: key.to_string(),
        value: value.to_string(),
    })
}

/// Parses a plan from the text format (v2, or legacy v1 with silent
/// second-to-microsecond conversion).
///
/// # Errors
///
/// Returns [`PlanParseError`] on malformed input.
pub fn from_text(text: &str) -> Result<Plan, PlanParseError> {
    from_text_with_warnings(text).map(|(plan, _)| plan)
}

/// [`from_text`], also reporting non-fatal findings: loading a legacy v1
/// file yields a warning naming the unit conversion that was applied.
///
/// # Errors
///
/// Returns [`PlanParseError`] on malformed input.
#[allow(clippy::too_many_lines)]
pub fn from_text_with_warnings(text: &str) -> Result<(Plan, Vec<String>), PlanParseError> {
    let mut lines = text.lines();
    let version = match lines.next().map(str::trim) {
        Some("adapipe-plan v2") => Version::V2,
        Some("adapipe-plan v1") => Version::V1,
        _ => return Err(PlanParseError::BadHeader),
    };
    let mut warnings = Vec::new();
    if version == Version::V1 {
        warnings.push(
            "legacy v1 plan: times were stored in seconds and have been converted to \
             microseconds; re-save the plan to upgrade it to v2"
                .to_string(),
        );
    }

    let mut method = None;
    let mut tensor = None;
    let mut pipeline = None;
    let mut data = None;
    let mut micro_batch = None;
    let mut seq_len = None;
    let mut global_batch = None;
    let mut n_microbatches = None;
    let mut predicted = None;
    let mut stages: Vec<StageFields> = Vec::new();

    for raw in lines {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(PlanParseError::BadLine(line.to_string()));
        };
        let (key, value) = (key.trim(), value.trim());
        match key {
            "units.time" | "units.bytes" => {
                if version == Version::V1 {
                    return Err(PlanParseError::BadLine(line.to_string()));
                }
                let expected = if key == "units.time" {
                    TIME_UNIT
                } else {
                    BYTES_UNIT
                };
                if value != expected {
                    return Err(PlanParseError::UnitMismatch {
                        key: key.to_string(),
                        declared: value.to_string(),
                        expected,
                    });
                }
            }
            "method" => method = Some(value.parse::<Method>()?),
            "tensor" => tensor = Some(parse::<usize>(key, value)?),
            "pipeline" => pipeline = Some(parse::<usize>(key, value)?),
            "data" => data = Some(parse::<usize>(key, value)?),
            "micro_batch" => micro_batch = Some(parse::<usize>(key, value)?),
            "seq_len" => seq_len = Some(parse::<usize>(key, value)?),
            "global_batch" => global_batch = Some(parse::<usize>(key, value)?),
            "n_microbatches" => n_microbatches = Some(parse::<usize>(key, value)?),
            "predicted" => {
                let parts: Vec<&str> = value.split_whitespace().collect();
                let [warmup, steady, ending, bottleneck] = parts[..] else {
                    return Err(PlanParseError::BadValue {
                        key: key.to_string(),
                        value: value.to_string(),
                    });
                };
                predicted = Some(F1bBreakdown {
                    warmup: version.time(parse(key, warmup)?),
                    steady: version.time(parse(key, steady)?),
                    ending: version.time(parse(key, ending)?),
                    bottleneck: version.time(parse(key, bottleneck)?),
                });
            }
            "stage" => {
                let idx: usize = parse(key, value)?;
                if idx != stages.len() {
                    return Err(PlanParseError::Inconsistent(format!(
                        "stage {idx} out of order (expected {})",
                        stages.len()
                    )));
                }
                stages.push(StageFields::default());
            }
            _ => {
                let stage = stages
                    .last_mut()
                    .ok_or_else(|| PlanParseError::BadLine(line.to_string()))?;
                match key {
                    "layers" => {
                        let parts: Vec<&str> = value.split_whitespace().collect();
                        let [first, last] = parts[..] else {
                            return Err(PlanParseError::BadValue {
                                key: key.to_string(),
                                value: value.to_string(),
                            });
                        };
                        stage.layers = Some((parse(key, first)?, parse(key, last)?));
                    }
                    "time_f" => stage.time_f = Some(parse(key, value)?),
                    "time_b" => stage.time_b = Some(parse(key, value)?),
                    "saved_bytes" => stage.saved_bytes = Some(parse(key, value)?),
                    "static_bytes" => stage.static_bytes = Some(parse(key, value)?),
                    "buffer_bytes" => stage.buffer_bytes = Some(parse(key, value)?),
                    "intermediate_bytes" => stage.intermediate_bytes = Some(parse(key, value)?),
                    "saved" => {
                        let mut flags = Vec::with_capacity(value.len());
                        for c in value.chars() {
                            match c {
                                '0' => flags.push(false),
                                '1' => flags.push(true),
                                _ => {
                                    return Err(PlanParseError::BadValue {
                                        key: key.to_string(),
                                        value: value.to_string(),
                                    })
                                }
                            }
                        }
                        stage.saved = Some(flags);
                    }
                    _ => return Err(PlanParseError::BadLine(line.to_string())),
                }
            }
        }
    }

    let method = method.ok_or(PlanParseError::Missing("method"))?;
    let parallel = ParallelConfig::new(
        tensor.ok_or(PlanParseError::Missing("tensor"))?,
        pipeline.ok_or(PlanParseError::Missing("pipeline"))?,
        data.ok_or(PlanParseError::Missing("data"))?,
    )
    .map_err(|e| PlanParseError::Inconsistent(e.to_string()))?;
    let train = TrainConfig::new(
        micro_batch.ok_or(PlanParseError::Missing("micro_batch"))?,
        seq_len.ok_or(PlanParseError::Missing("seq_len"))?,
        global_batch.ok_or(PlanParseError::Missing("global_batch"))?,
    )
    .map_err(|e| PlanParseError::Inconsistent(e.to_string()))?;

    let expected = parallel.pipeline() * method.virtual_chunks();
    if stages.len() != expected {
        return Err(PlanParseError::Inconsistent(format!(
            "{} stage blocks for pipeline {expected}",
            stages.len()
        )));
    }
    let plan = Plan {
        method,
        parallel,
        train,
        n_microbatches: n_microbatches.ok_or(PlanParseError::Missing("n_microbatches"))?,
        stages: stages
            .into_iter()
            .map(|f| f.build(version))
            .collect::<Result<_, _>>()?,
        predicted,
    };
    Ok((plan, warnings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::Planner;
    use adapipe_hw::presets as hw;
    use adapipe_model::presets;

    fn sample(method: Method) -> Plan {
        let planner = Planner::new(presets::gpt2_small(), hw::cluster_a_with_nodes(1));
        let parallel = ParallelConfig::new(2, 4, 1).unwrap();
        let train = TrainConfig::new(1, 1024, 32).unwrap();
        planner.plan(method, parallel, train).unwrap()
    }

    #[test]
    fn round_trip_is_exact_for_every_method() {
        for method in [
            Method::AdaPipe,
            Method::EvenPartitioning,
            Method::DappleFull,
            Method::GpipeNone,
            Method::InterleavedFull,
        ] {
            let plan = sample(method);
            let text = to_text(&plan);
            let back = from_text(&text).unwrap_or_else(|e| panic!("{method}: {e}\n{text}"));
            assert_eq!(plan, back, "{method}");
        }
    }

    #[test]
    fn method_names_round_trip() {
        for m in Method::all() {
            assert_eq!(m.to_string().parse::<Method>().unwrap(), m);
        }
        assert!("NotAMethod".parse::<Method>().is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(from_text("hello"), Err(PlanParseError::BadHeader));
        assert!(matches!(
            from_text("adapipe-plan v2\nmethod = AdaPipe\n"),
            Err(PlanParseError::Missing(_))
        ));
        assert!(matches!(
            from_text("adapipe-plan v2\nwat\n"),
            Err(PlanParseError::BadLine(_))
        ));
    }

    #[test]
    fn emits_v2_header_with_units_block() {
        let text = to_text(&sample(Method::DappleFull));
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("adapipe-plan v2"));
        assert_eq!(lines.next(), Some("units.time = us"));
        assert_eq!(lines.next(), Some("units.bytes = B"));
    }

    #[test]
    fn rejects_contradictory_units() {
        let text =
            to_text(&sample(Method::DappleFull)).replace("units.time = us", "units.time = ms");
        let err = from_text(&text).unwrap_err();
        assert!(matches!(err, PlanParseError::UnitMismatch { .. }), "{err}");
        assert!(err.to_string().contains("unit-mismatch"), "{err}");

        let text =
            to_text(&sample(Method::DappleFull)).replace("units.bytes = B", "units.bytes = KiB");
        assert!(matches!(
            from_text(&text),
            Err(PlanParseError::UnitMismatch { .. })
        ));
    }

    #[test]
    fn loads_legacy_v1_seconds_with_a_warning() {
        let plan = sample(Method::DappleFull);
        // Re-encode the plan as a v1 artifact: seconds, no units block.
        let mut v1 = String::from("adapipe-plan v1\n");
        for line in to_text(&plan).lines().skip(3) {
            if let Some(rest) = line.strip_prefix("  time_f = ") {
                let us: f64 = rest.parse().unwrap();
                v1.push_str(&format!("  time_f = {:?}\n", us * 1e-6));
            } else if let Some(rest) = line.strip_prefix("  time_b = ") {
                let us: f64 = rest.parse().unwrap();
                v1.push_str(&format!("  time_b = {:?}\n", us * 1e-6));
            } else if let Some(rest) = line.strip_prefix("predicted = ") {
                let secs: Vec<String> = rest
                    .split_whitespace()
                    .map(|v| format!("{:?}", v.parse::<f64>().unwrap() * 1e-6))
                    .collect();
                v1.push_str(&format!("predicted = {}\n", secs.join(" ")));
            } else {
                v1.push_str(line);
                v1.push('\n');
            }
        }
        let (back, warnings) = from_text_with_warnings(&v1).unwrap();
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("v1"), "{warnings:?}");
        // Times survive the seconds round-trip to float precision.
        for (a, b) in plan.stages.iter().zip(back.stages.iter()) {
            let drift = (a.cost.time_f - b.cost.time_f).abs();
            assert!(drift < MicroSecs::new(1e-9), "{a:?} vs {b:?}");
        }
        // And a v1 file must not carry a units block.
        let bad = v1.replacen("adapipe-plan v1\n", "adapipe-plan v1\nunits.time = us\n", 1);
        assert!(matches!(from_text(&bad), Err(PlanParseError::BadLine(_))));
    }

    #[test]
    fn v2_parses_cleanly_without_warnings() {
        let plan = sample(Method::DappleFull);
        let (_, warnings) = from_text_with_warnings(&to_text(&plan)).unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn rejects_inconsistent_stage_counts() {
        let plan = sample(Method::DappleFull);
        let text = to_text(&plan);
        // Drop the last stage block.
        let cut = text.find("stage = 3").unwrap();
        let err = from_text(&text[..cut]).unwrap_err();
        assert!(matches!(err, PlanParseError::Inconsistent(_)), "{err}");
    }

    #[test]
    fn rejects_bad_saved_flags() {
        let plan = sample(Method::DappleFull);
        let text = to_text(&plan).replace("saved = 1", "saved = 1x");
        assert!(matches!(
            from_text(&text),
            Err(PlanParseError::BadValue { .. })
        ));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(128))]

        /// Randomly corrupting a valid plan file must never panic the
        /// parser — it either still parses or returns a structured error.
        #[test]
        fn parser_never_panics_on_corrupted_input(
            pos in 0usize..4096,
            byte in 0u8..=255,
            truncate in proptest::bool::ANY,
        ) {
            let plan = sample(Method::DappleFull);
            let mut text = to_text(&plan).into_bytes();
            let idx = pos % text.len();
            if truncate {
                text.truncate(idx);
            } else {
                text[idx] = byte;
            }
            // Lossy round-trip keeps it a &str parse like real file reads.
            let corrupted = String::from_utf8_lossy(&text);
            let _ = from_text(&corrupted); // must not panic
        }
    }

    #[test]
    fn evaluation_of_reloaded_plan_matches() {
        let planner = Planner::new(presets::gpt2_small(), hw::cluster_a_with_nodes(1));
        let plan = sample(Method::AdaPipe);
        let reloaded = from_text(&to_text(&plan)).unwrap();
        let a = planner.evaluate(&plan);
        let b = planner.evaluate(&reloaded);
        assert_eq!(a.iteration_time, b.iteration_time);
        assert_eq!(a.peak_bytes_per_device, b.peak_bytes_per_device);
    }
}
