//! Fixture: a justified waiver silences `unchecked-cast`.

pub fn cost_math(n: usize) -> f64 {
    // lint: allow(unchecked-cast): count below 2^53, exact in f64
    let scale = n as f64;
    scale
}
