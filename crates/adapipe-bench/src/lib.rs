//! Shared helpers for the figure/table regenerators and Criterion
//! benches. Each binary in `src/bin` reproduces one table or figure of
//! the paper's evaluation; see `EXPERIMENTS.md` at the workspace root
//! for the index and expected shapes.

#![forbid(unsafe_code)]

pub mod cluster_a;

use adapipe::{Evaluation, Method, PlanError, Planner};
use adapipe_model::{ModelSpec, ParallelConfig, TrainConfig};
use adapipe_obs::Recorder;
use adapipe_units::{Bytes, MicroSecs};
use std::path::PathBuf;

/// Locates the `results/` directory: `$ADAPIPE_RESULTS_DIR` if set
/// (created on demand — an explicit override should not require
/// pre-creating the directory), else the first `results/` found walking
/// up from the working directory (same discovery rule as the Criterion
/// harnesses' summary path).
#[must_use]
pub fn results_dir() -> Option<PathBuf> {
    if let Ok(dir) = std::env::var("ADAPIPE_RESULTS_DIR") {
        let dir = PathBuf::from(dir);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("note: cannot create {}: {e}", dir.display());
            return None;
        }
        return Some(dir);
    }
    let mut cur = std::env::current_dir().ok()?;
    loop {
        let candidate = cur.join("results");
        if candidate.is_dir() {
            return Some(candidate);
        }
        if !cur.pop() {
            return None;
        }
    }
}

/// Writes `results/BENCH_<name>.json`: the binary's wall-clock time plus
/// everything `rec` observed (knapsack/DP counters, simulator effort,
/// span timings), so figure regenerators leave the same machine-readable
/// trail as the Criterion benches. Returns the written path, or `None`
/// (with a note on stderr) when no `results/` directory is discoverable.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn emit_bench_json(name: &str, rec: &Recorder, meta: &[(&str, &str)]) -> Option<PathBuf> {
    let Some(dir) = results_dir() else {
        eprintln!("note: no results/ directory found; skipping BENCH_{name}.json");
        return None;
    };
    let commit = git_commit();
    let config = bench_config_name();
    let mut all_meta = vec![
        ("bench", name),
        ("schema_version", "adapipe-bench/v1"),
        ("commit", commit.as_str()),
    ];
    if !meta.iter().any(|(k, _)| *k == "config") {
        all_meta.push(("config", config.as_str()));
    }
    all_meta.extend_from_slice(meta);
    let json = adapipe_obs::report::metrics_json(&rec.snapshot(), &all_meta);
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("bench metrics written to {}", path.display());
    Some(path)
}

/// The commit this run was produced at: `$ADAPIPE_GIT_COMMIT` if set
/// (CI knows best), else `git rev-parse --short HEAD`, else `unknown`.
/// Stamped into every `BENCH_*.json` so `bench-diff` can tell which
/// runs are comparable.
#[must_use]
pub fn git_commit() -> String {
    if let Ok(commit) = std::env::var("ADAPIPE_GIT_COMMIT") {
        return commit;
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The named configuration of this run (`$ADAPIPE_BENCH_CONFIG`,
/// default `default`); callers that pass their own `config` meta pair
/// win over the environment.
#[must_use]
pub fn bench_config_name() -> String {
    std::env::var("ADAPIPE_BENCH_CONFIG").unwrap_or_else(|_| "default".to_string())
}

/// Pretty-prints a fixed-width table.
///
/// # Panics
///
/// Panics if a row's width differs from the header's.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let headers: Vec<String> = headers.iter().map(|s| (*s).to_string()).collect();
    println!("{}", fmt_row(&headers));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// A unicode bar scaled to `width` characters.
#[must_use]
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || !value.is_finite() {
        return String::new();
    }
    let filled = ((value / max) * width as f64)
        .round()
        .clamp(0.0, width as f64) as usize;
    "█".repeat(filled)
}

/// Bytes → GB (decimal, as the paper's figures use).
#[must_use]
pub fn gb(bytes: Bytes) -> f64 {
    bytes.as_f64() / 1e9
}

/// Formats an evaluation cell: seconds or `OOM`.
#[must_use]
pub fn time_cell(result: &Result<Evaluation, PlanError>) -> String {
    match result {
        Ok(e) if e.fits => format!("{:.3}", e.iteration_time.as_secs()),
        Ok(_) => "OOM".to_string(),
        Err(PlanError::OutOfMemory { .. }) => "OOM".to_string(),
        Err(PlanError::Unsupported { .. }) => "n/a".to_string(),
        Err(e) => format!("err: {e}"),
    }
}

/// Plans and evaluates `method` under every legal parallel strategy for
/// `devices` devices and returns the best memory-feasible iteration time
/// (the paper reports the best strategy per method on cluster A).
#[must_use]
pub fn best_time_over_strategies(
    planner: &Planner,
    method: Method,
    devices: usize,
    train: TrainConfig,
) -> Option<MicroSecs> {
    let outcomes = adapipe::sweep_parallel_strategies(planner, method, devices, train, 8, 2);
    adapipe::best_outcome(&outcomes).and_then(adapipe::StrategyOutcome::time)
}

/// The cluster-A workloads of Table 2: `(seq_len, global_batch)` pairs
/// keeping tokens-per-iteration constant.
#[must_use]
pub fn cluster_a_workloads() -> Vec<TrainConfig> {
    [(4096usize, 128usize), (8192, 64), (16384, 32)]
        .into_iter()
        .map(|(s, g)| TrainConfig::new(1, s, g).expect("valid workload"))
        .collect()
}

/// Paper evaluation models.
#[must_use]
pub fn models() -> [(ModelSpec, usize); 2] {
    [
        (adapipe_model::presets::gpt3_175b(), 64),
        (adapipe_model::presets::llama2_70b(), 32),
    ]
}

/// The fixed cluster-B parallel strategies of §7.2.
#[must_use]
pub fn cluster_b_parallel(model: &ModelSpec, devices: usize) -> ParallelConfig {
    let t = if model.name().starts_with("llama") {
        4
    } else {
        8
    };
    let p = 8;
    let d = devices / (t * p);
    ParallelConfig::new(t, p, d).expect("valid cluster-B strategy")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales_and_clamps() {
        assert_eq!(bar(5.0, 10.0, 10).chars().count(), 5);
        assert_eq!(bar(20.0, 10.0, 10).chars().count(), 10);
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn cluster_b_strategies_match_paper() {
        let (gpt3, _) = &models()[0];
        let (llama, _) = &models()[1];
        let g = cluster_b_parallel(gpt3, 256);
        assert_eq!((g.tensor(), g.pipeline(), g.data()), (8, 8, 4));
        let l = cluster_b_parallel(llama, 128);
        assert_eq!((l.tensor(), l.pipeline(), l.data()), (4, 8, 4));
        assert_eq!(cluster_b_parallel(gpt3, 2048).data(), 32);
    }

    #[test]
    fn workloads_hold_tokens_constant() {
        let w = cluster_a_workloads();
        assert_eq!(w.len(), 3);
        assert!(w
            .windows(2)
            .all(|p| p[0].tokens_per_iteration() == p[1].tokens_per_iteration()));
    }
}
