use serde::{Deserialize, Serialize};
use std::fmt;

/// A link between devices: sustained bandwidth and per-message latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    bandwidth: f64,
    latency: f64,
}

impl LinkSpec {
    /// Creates a link with `bandwidth` bytes/s and `latency` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is not strictly positive or `latency` is
    /// negative.
    #[must_use]
    pub fn new(bandwidth: f64, latency: f64) -> Self {
        assert!(bandwidth > 0.0, "link bandwidth must be positive");
        assert!(latency >= 0.0, "link latency must be non-negative");
        LinkSpec { bandwidth, latency }
    }

    /// Sustained bandwidth in bytes per second.
    #[must_use]
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Per-message latency in seconds.
    #[must_use]
    pub fn latency(&self) -> f64 {
        self.latency
    }

    /// Time in seconds to move `bytes` over this link once.
    #[must_use]
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }
}

impl fmt::Display for LinkSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} GB/s, {:.1} us",
            self.bandwidth / 1e9,
            self.latency * 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_linearly_past_latency() {
        let link = LinkSpec::new(1e9, 1e-6);
        let t1 = link.transfer_time(1_000_000);
        let t2 = link.transfer_time(2_000_000);
        assert!((t2 - t1 - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn zero_bytes_costs_latency_only() {
        let link = LinkSpec::new(5e9, 2e-6);
        assert!((link.transfer_time(0) - 2e-6).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        let _ = LinkSpec::new(0.0, 0.0);
    }
}
