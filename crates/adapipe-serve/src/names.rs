//! The canonical external names of models, clusters and methods.
//!
//! The request wire format and the CLI flags share one closed-world
//! vocabulary, defined here so the daemon and `adapipe-cli` cannot
//! drift: `gpt2` must resolve to the same preset and `dapple-full` to
//! the same [`Method`] everywhere, or canonicalized digests would stop
//! being portable between clients.

use adapipe::Method;
use adapipe_hw::{presets as hw, ClusterSpec};
use adapipe_model::{presets, ModelSpec};

/// Known model names, for help/error output.
pub const MODEL_CHOICES: &str = "gpt3, gpt3-13b, llama2, llama2-13b, gpt2, bert, tiny";

/// Known cluster names, for help/error output.
pub const CLUSTER_CHOICES: &str = "a (DGX-A100), b (Atlas 800)";

/// Every `(external name, method)` pair, in the CLI's documented order.
pub const METHODS: [(&str, Method); 13] = [
    ("adapipe", Method::AdaPipe),
    ("even", Method::EvenPartitioning),
    ("dapple-full", Method::DappleFull),
    ("dapple-non", Method::DappleNone),
    ("dapple-selective", Method::DappleSelective),
    ("chimera-full", Method::ChimeraFull),
    ("chimera-non", Method::ChimeraNone),
    ("chimerad-full", Method::ChimeraDFull),
    ("chimerad-non", Method::ChimeraDNone),
    ("gpipe-full", Method::GpipeFull),
    ("gpipe-non", Method::GpipeNone),
    ("interleaved-full", Method::InterleavedFull),
    ("interleaved-non", Method::InterleavedNone),
];

/// Known method names, for help/error output.
pub const METHOD_CHOICES: &str = "adapipe, even, dapple-full, dapple-non, dapple-selective, \
                                  chimera-full, chimera-non, chimerad-full, chimerad-non, \
                                  gpipe-full, gpipe-non, interleaved-full, interleaved-non";

/// Resolves a model name to its preset.
#[must_use]
pub fn model(name: &str) -> Option<ModelSpec> {
    match name {
        "gpt3" => Some(presets::gpt3_175b()),
        "gpt3-13b" => Some(presets::gpt3_13b()),
        "llama2" => Some(presets::llama2_70b()),
        "llama2-13b" => Some(presets::llama2_13b()),
        "gpt2" => Some(presets::gpt2_small()),
        "bert" => Some(presets::bert_large()),
        "tiny" => Some(presets::tiny_gpt()),
        _ => None,
    }
}

/// The node count a cluster defaults to when the caller names none.
#[must_use]
pub fn default_nodes(cluster: &str) -> Option<usize> {
    match cluster {
        "a" => Some(8),
        "b" => Some(32),
        _ => None,
    }
}

/// Resolves a cluster name (+ optional node count) to its spec.
#[must_use]
pub fn cluster(name: &str, nodes: Option<usize>) -> Option<ClusterSpec> {
    let nodes = nodes.or_else(|| default_nodes(name))?;
    match name {
        "a" => Some(hw::cluster_a_with_nodes(nodes)),
        "b" => Some(hw::cluster_b_with_nodes(nodes)),
        _ => None,
    }
}

/// Resolves an external method name.
#[must_use]
pub fn method(name: &str) -> Option<Method> {
    METHODS.iter().find(|(n, _)| *n == name).map(|&(_, m)| m)
}

/// The external name of a method — the inverse of [`method`].
#[must_use]
pub fn method_name(m: Method) -> &'static str {
    METHODS
        .iter()
        .find(|&&(_, candidate)| candidate == m)
        .map_or("adapipe", |&(n, _)| n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_documented_method_round_trips() {
        for name in METHOD_CHOICES.split(", ") {
            let name = name.trim();
            let m = method(name).unwrap_or_else(|| panic!("{name} did not resolve"));
            assert_eq!(method_name(m), name);
        }
    }

    #[test]
    fn every_method_variant_has_a_name() {
        for m in Method::all() {
            let name = method_name(m);
            assert_eq!(method(name), Some(m), "{name}");
        }
    }

    #[test]
    fn every_documented_model_resolves() {
        for name in MODEL_CHOICES.split(", ") {
            assert!(model(name.trim()).is_some(), "{name}");
        }
        assert!(model("bloom").is_none());
    }

    #[test]
    fn clusters_resolve_with_defaults_and_overrides() {
        assert!(cluster("a", None).is_some());
        assert_eq!(cluster("b", Some(4)).map(|c| c.total_devices()), Some(32));
        assert!(cluster("z", None).is_none());
    }
}
