//! Applying a fault plan to a run: perturbing per-stage execution
//! profiles (persistent stragglers) and built task graphs (one-shot
//! stalls).

use crate::clock::{FaultClock, PendingStall};
use adapipe_sim::{OpKind, StageExec, TaskGraph};
use adapipe_units::MicroSecs;

/// The per-stage execution profile the *degraded* world runs at the
/// clock's current step: stage `s`'s forward/backward times divided by
/// device `s`'s compute factor (1F1B maps stage `s` to device `s`).
/// Memory footprints are unchanged — a slow device still stores the
/// same activations.
#[must_use]
pub fn degraded_stage_execs(planned: &[StageExec], clock: &FaultClock) -> Vec<StageExec> {
    planned
        .iter()
        .enumerate()
        .map(|(s, e)| {
            let factor = clock.compute_factor(s);
            StageExec {
                time_f: MicroSecs::new(e.time_f.as_micros() / factor),
                time_b: MicroSecs::new(e.time_b.as_micros() / factor),
                ..*e
            }
        })
        .collect()
}

/// Applies the transient stalls due at the clock's current step of a
/// `horizon`-step run to `graph`: each stall lengthens the *forward*
/// task of its (device, micro-batch) by the stall delay, once per run.
/// Returns the stalls that were applied (stalls naming a task absent
/// from the graph are consumed but produce no delay).
pub fn apply_stalls(
    graph: &mut TaskGraph,
    clock: &mut FaultClock,
    horizon: usize,
) -> Vec<(PendingStall, MicroSecs)> {
    let due = clock.take_stalls(horizon);
    for &(stall, delay) in &due {
        let target = (0..graph.len()).find(|&id| {
            let meta = graph.task_meta(id);
            graph.task_device(id) == stall.device
                && meta.micro_batch == stall.micro_batch
                && meta.kind == OpKind::Forward
        });
        if let Some(id) = target {
            graph.delay_task(id, delay);
        }
    }
    due
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Fault, FaultPlan};
    use adapipe_sim::{schedule, simulate};
    use adapipe_units::Bytes;

    fn stages(p: usize) -> Vec<StageExec> {
        vec![
            StageExec {
                time_f: MicroSecs::new(1.0),
                time_b: MicroSecs::new(2.0),
                saved_bytes: Bytes::new(1),
                buffer_bytes: Bytes::ZERO
            };
            p
        ]
    }

    #[test]
    fn straggler_scales_only_its_stage() {
        let plan = FaultPlan::new(1).with(Fault::Straggler {
            device: 1,
            factor: 0.5,
            from_step: 0,
        });
        let clock = FaultClock::new(&plan);
        let degraded = degraded_stage_execs(&stages(3), &clock);
        assert!((degraded[1].time_f.as_micros() - 2.0).abs() < 1e-12);
        assert!((degraded[1].time_b.as_micros() - 4.0).abs() < 1e-12);
        assert!((degraded[0].time_f.as_micros() - 1.0).abs() < 1e-12);
        assert_eq!(degraded[1].saved_bytes, Bytes::new(1));
    }

    #[test]
    fn straggler_respects_from_step() {
        let plan = FaultPlan::new(1).with(Fault::Straggler {
            device: 0,
            factor: 0.5,
            from_step: 2,
        });
        let mut clock = FaultClock::new(&plan);
        let before = degraded_stage_execs(&stages(2), &clock);
        assert!((before[0].time_f.as_micros() - 1.0).abs() < 1e-12);
        clock.advance();
        clock.advance();
        let after = degraded_stage_execs(&stages(2), &clock);
        assert!((after[0].time_f.as_micros() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stall_lengthens_one_forward_and_the_makespan() {
        let (p, n) = (3usize, 6usize);
        let plan = FaultPlan::new(5).with(Fault::TransientStall {
            device: 1,
            micro_batch: 2,
            delay: MicroSecs::new(10.0),
        });
        let mut clock = FaultClock::new(&plan);
        let fire = clock.fire_step(0, 4);
        for _ in 0..fire {
            clock.advance();
        }
        let mut graph = schedule::one_f_one_b(&stages(p), n, MicroSecs::ZERO);
        let healthy = simulate(&graph).makespan;
        let applied = apply_stalls(&mut graph, &mut clock, 4);
        assert_eq!(applied.len(), 1);
        let stalled = simulate(&graph).makespan;
        assert!(stalled >= healthy + MicroSecs::new(10.0) * 0.99);
        // One-shot: a second application changes nothing.
        assert!(apply_stalls(&mut graph, &mut clock, 4).is_empty());
    }

    #[test]
    fn stall_for_absent_task_is_consumed_silently() {
        let plan = FaultPlan::new(5).with(Fault::TransientStall {
            device: 99,
            micro_batch: 0,
            delay: MicroSecs::new(10.0),
        });
        let mut clock = FaultClock::new(&plan);
        let fire = clock.fire_step(0, 4);
        for _ in 0..fire {
            clock.advance();
        }
        let mut graph = schedule::one_f_one_b(&stages(2), 4, MicroSecs::ZERO);
        let before = simulate(&graph).makespan;
        let applied = apply_stalls(&mut graph, &mut clock, 4);
        assert_eq!(applied.len(), 1);
        let after = simulate(&graph).makespan;
        assert!((after - before).abs() < MicroSecs::new(1e-12));
    }
}
