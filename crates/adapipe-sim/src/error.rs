//! Typed simulator errors: conditions that used to be debug-only
//! assertions or panics, surfaced so release builds (and chaos
//! harnesses) can detect and recover from them.

use adapipe_units::Bytes;
use std::error::Error;
use std::fmt;

/// A failure the engine or validators detected while (or after)
/// executing a schedule.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A device's dynamic-memory high-water mark overran its budget.
    /// Previously only a `debug_assert` caught over-budget stages; the
    /// typed variant makes release builds detect them too.
    BudgetExceeded {
        /// The device (= pipeline stage for plain pipelines).
        device: usize,
        /// Observed dynamic high-water mark.
        high_water: Bytes,
        /// The budget it overran.
        budget: Bytes,
    },
    /// The schedule deadlocked: some tasks can never run (a cyclic or
    /// underspecified task graph).
    Deadlock {
        /// Schedule name.
        schedule: String,
        /// Tasks that did complete.
        completed: usize,
        /// Total tasks in the graph.
        total: usize,
        /// Up to eight stuck tasks with what they wait on.
        stuck: Vec<String>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BudgetExceeded {
                device,
                high_water,
                budget,
            } => write!(
                f,
                "device {device} exceeded its memory budget: high-water {high_water} over {budget}"
            ),
            SimError::Deadlock {
                schedule,
                completed,
                total,
                stuck,
            } => write!(
                f,
                "schedule deadlocked: {completed}/{total} tasks ran ({schedule}):\n  {}",
                stuck.join("\n  ")
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_quantities() {
        let e = SimError::BudgetExceeded {
            device: 3,
            high_water: Bytes::new(200),
            budget: Bytes::new(100),
        };
        assert!(e.to_string().contains("device 3"), "{e}");
        let d = SimError::Deadlock {
            schedule: "1f1b".into(),
            completed: 5,
            total: 8,
            stuck: vec!["task 6 waits on [5]".into()],
        };
        let s = d.to_string();
        assert!(s.contains("5/8"), "{s}");
        assert!(s.contains("1f1b"), "{s}");
    }
}
