pub fn read(x: Option<usize>) -> usize {
    x.unwrap()
}
