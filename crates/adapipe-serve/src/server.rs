//! The daemon: an acceptor thread feeding a bounded worker pool.
//!
//! ```text
//!            ┌──────────┐  try_push   ┌───────────────┐
//!  TCP ────▶ │ acceptor │ ──────────▶ │ BoundedQueue  │ ──▶ workers (N)
//!            └──────────┘   (full →   └───────────────┘       │
//!                            503 +                            ▼
//!                            Retry-After)              parse → digest →
//!                                                      cache hit? ──▶ 200
//!                                                      miss → plan →
//!                                                      verify → insert
//! ```
//!
//! Design rules, in order of importance:
//!
//! 1. **Never accept-then-hang.** A connection the pool cannot absorb
//!    is answered `503` with `Retry-After` by the acceptor itself.
//! 2. **Every served plan verifies.** The cold path runs
//!    `adapipe::verify` (full [`VerifyOptions`]) before the plan enters
//!    the cache or leaves the process.
//! 3. **Cache hits are byte-identical** to the cold response: the cache
//!    stores the exact body string the cold path rendered.
//! 4. **Shutdown drains.** [`Server::request_shutdown`] (or
//!    `POST /admin/shutdown`) stops the acceptor, then workers finish
//!    everything already queued before exiting. Rust's std cannot catch
//!    SIGTERM without a dependency, so process supervisors use the
//!    admin endpoint; `kill -9` remains safe because no response is
//!    ever half-served from the cache.
//!
//! ## Request-scoped tracing
//!
//! Every accepted connection carries its own request [`Recorder`] whose
//! epoch is the accept instant. The worker injects a queue-wait span at
//! pickup, the request phases (`serve.parse`, the planner's own span
//! tree, `serve.verify`, `serve.cache_insert`) record into the same
//! recorder, and `POST /v1/plan` responses return a deterministic trace
//! id in `X-Adapipe-Trace` — `<digest prefix>-<sequence>`, no
//! wall-clock — whose Chrome-trace JSON is retrievable from a bounded
//! [`TraceStore`] via `GET /v1/trace/{id}`. Metrics (not spans) from
//! the request recorder are folded into the shared registry via
//! [`Recorder::absorb`], so `/metrics` aggregates while span storage
//! stays bounded per request.
//!
//! ## Flight recorder
//!
//! A bounded [`FlightRecorder`] ring notes every incident (backpressure
//! 503s, deadline rejections and misses, watchdog degradation events,
//! verify failures). Each incident also dumps the ring to
//! `flight-<reason>.json` under [`ServeConfig::flight_dir`] (when set),
//! and `POST /admin/dump` returns the ring as `adapipe-flight/v1` JSON
//! on demand.

use crate::cache::PlanCache;
use crate::http::{self, Request, Response};
use crate::queue::{BoundedQueue, PushError};
use crate::request::{PlanRequest, RequestError};
use crate::trace_store::TraceStore;
use adapipe::VerifyOptions;
use adapipe_exec::ExecPool;
use adapipe_faults::{DegradationEvent, Diagnosis, Watchdog};
use adapipe_obs::{flight, keys, report, trace, FlightRecorder, Recorder};
use adapipe_partition::subcache;
use adapipe_units::{convert, MicroSecs};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How many deadline-miss events the watchdog log retains (a bounded
/// ring; older events age out first).
const DEADLINE_LOG_CAP: usize = 1024;

/// Socket read/write timeout: a stalled client cannot pin a worker.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Response header carrying the request's trace id.
const TRACE_HEADER: &str = "X-Adapipe-Trace";

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind host.
    pub host: String,
    /// Bind port (0 picks a free port; see [`Server::addr`]).
    pub port: u16,
    /// Worker threads planning cold requests.
    pub workers: usize,
    /// Plan-cache capacity in entries.
    pub cache_capacity: usize,
    /// Worker-queue depth; connections beyond it get `503`.
    pub queue_depth: usize,
    /// Deadline applied to requests that carry none of their own.
    pub default_deadline: Option<MicroSecs>,
    /// Extra latency injected into every cold plan — a testing aid that
    /// makes backpressure and drain scenarios deterministic.
    pub plan_delay: Option<Duration>,
    /// How many request traces `GET /v1/trace/{id}` retains (oldest
    /// evicted first).
    pub trace_capacity: usize,
    /// Flight-recorder ring capacity (events retained for dumps).
    pub flight_capacity: usize,
    /// Directory flight dumps are written into (`flight-<reason>.json`)
    /// on incidents and `POST /admin/dump`; `None` disables artifacts
    /// (the in-memory ring still records).
    pub flight_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            host: "127.0.0.1".to_string(),
            port: 8080,
            workers: 4,
            cache_capacity: 1024,
            queue_depth: 64,
            default_deadline: None,
            plan_delay: None,
            trace_capacity: 64,
            flight_capacity: flight::DEFAULT_CAPACITY,
            flight_dir: None,
        }
    }
}

/// What the daemon did over its lifetime, reported by [`Server::join`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections accepted.
    pub requests: u64,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses (cold plans).
    pub cache_misses: u64,
    /// Connections rejected with `503` (backpressure + expired
    /// deadlines).
    pub rejected: u64,
}

struct Job {
    stream: TcpStream,
    enqueued: Instant,
    /// Request-scoped recorder; epoch is the accept instant, so the
    /// queue-wait span starts at ~0 and the phase spans nest after it.
    rec: Recorder,
}

struct Shared {
    cfg: ServeConfig,
    addr: SocketAddr,
    cache: PlanCache,
    /// Deterministic work-stealing pool shared by every worker's
    /// planner for parallel leaf prefill (`ADAPIPE_THREADS` sizes it).
    exec: Arc<ExecPool>,
    queue: BoundedQueue<Job>,
    rec: Recorder,
    traces: TraceStore,
    flight: FlightRecorder,
    trace_seq: AtomicU64,
    busy: AtomicUsize,
    watchdog: Watchdog,
    deadline_log: Mutex<VecDeque<DegradationEvent>>,
    shutting_down: AtomicBool,
}

impl Shared {
    fn begin_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the acceptor out of `accept` with a no-op connection; if
        // the connect fails the acceptor is already gone.
        // lint: allow(swallowed-result): best-effort wake of the acceptor
        let _wake = TcpStream::connect(self.addr);
    }

    fn record_deadline_miss(
        &self,
        worker: usize,
        seq: usize,
        observed: MicroSecs,
        deadline: MicroSecs,
        trace_id: &str,
    ) {
        let event = DegradationEvent::DeadlineMissed {
            stage: worker,
            micro_batch: seq,
            observed,
            deadline,
        };
        // A watchdog-grade event is flight-recorder material: note it
        // with its trace id and dump the ring.
        self.flight
            .note_traced(keys::FLIGHT_WATCHDOG, event.to_string(), trace_id);
        self.dump_flight(keys::FLIGHT_WATCHDOG);
        let mut log = self.deadline_log.lock().unwrap_or_else(|e| e.into_inner());
        if log.len() >= DEADLINE_LOG_CAP {
            log.pop_front();
        }
        log.push_back(event);
    }

    /// Classifies the logged deadline misses with the `adapipe-faults`
    /// watchdog: a worker missing persistently is a straggler worth
    /// operator attention, a one-off is load noise.
    fn deadline_diagnosis(&self) -> Diagnosis {
        let events: Vec<DegradationEvent> = self
            .deadline_log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect();
        self.watchdog.diagnose(&events)
    }

    /// Writes the flight ring to `flight-<reason>.json` under the
    /// configured dump directory; a no-op when none is configured.
    fn dump_flight(&self, reason: &str) {
        let Some(dir) = &self.cfg.flight_dir else {
            return;
        };
        // lint: allow(swallowed-result): artifact dumps are best-effort
        let _made = std::fs::create_dir_all(dir);
        let json = flight::flight_json(
            &self.flight.snapshot(),
            reason,
            &[("component", "adapipe-serve")],
        );
        let path = dir.join(format!("flight-{reason}.json"));
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: cannot write flight dump {}: {e}", path.display());
        }
    }

    /// The deterministic trace id for a request: the first 16 hex chars
    /// of its content digest plus a process-lifetime sequence number.
    /// No wall-clock component — two runs replaying the same request
    /// stream mint the same ids.
    fn next_trace_id(&self, digest: &str) -> String {
        let n = self.trace_seq.fetch_add(1, Ordering::SeqCst);
        let prefix = digest.get(..16).unwrap_or(digest);
        format!("{prefix}-{n}")
    }

    /// Renders the request recorder's spans as Chrome-trace JSON and
    /// parks them in the bounded trace store.
    fn store_trace(&self, rec: &Recorder, trace_id: &str) {
        let text = trace::chrome_trace_json(&rec.snapshot());
        self.traces.insert(trace_id, Arc::from(text.as_str()));
    }
}

/// A running daemon. Dropping the handle does **not** stop the server;
/// call [`Server::shutdown_and_join`] (or hit `POST /admin/shutdown`).
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts accepting. Metrics flow into `rec` (pass
    /// [`Recorder::disabled`] to opt out).
    pub fn bind(cfg: ServeConfig, rec: Recorder) -> std::io::Result<Server> {
        let listener = TcpListener::bind((cfg.host.as_str(), cfg.port))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cache: PlanCache::new(cfg.cache_capacity),
            exec: Arc::new(ExecPool::from_env()),
            queue: BoundedQueue::new(cfg.queue_depth),
            rec,
            traces: TraceStore::new(cfg.trace_capacity),
            flight: FlightRecorder::new(cfg.flight_capacity),
            trace_seq: AtomicU64::new(1),
            busy: AtomicUsize::new(0),
            watchdog: Watchdog::default(),
            deadline_log: Mutex::new(VecDeque::with_capacity(DEADLINE_LOG_CAP)),
            shutting_down: AtomicBool::new(false),
            addr,
            cfg,
        });
        let workers = (0..shared.cfg.workers.max(1))
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, id))
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            Some(std::thread::spawn(move || accept_loop(&shared, &listener)))
        };
        Ok(Server {
            shared,
            acceptor,
            workers,
        })
    }

    /// The bound address (useful with `port: 0`).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The recorder metrics flow into.
    #[must_use]
    pub fn recorder(&self) -> &Recorder {
        &self.shared.rec
    }

    /// The daemon's flight recorder (incident ring buffer).
    #[must_use]
    pub fn flight(&self) -> &FlightRecorder {
        &self.shared.flight
    }

    /// Publishes the search-engine gauges (`exec.pool.*`, `subcache.*`)
    /// into the recorder. `GET /metrics` does this on every scrape;
    /// embedders that read the recorder directly (e.g. the serve_load
    /// bench artifact) call it once before snapshotting.
    pub fn publish_engine_gauges(&self) {
        // lint: allow(swallowed-result): None only means "no traffic yet"
        let _sub = keys::publish_subcache_hit_rate(&self.shared.rec);
        publish_engine_gauges(&self.shared);
    }

    /// Starts a graceful drain: stop accepting, finish queued and
    /// in-flight requests. Returns immediately; [`Server::join`] waits.
    pub fn request_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Whether a shutdown has been requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::SeqCst)
    }

    /// Waits for the acceptor and every worker to exit (i.e. for a
    /// requested shutdown to finish draining) and reports totals.
    pub fn join(mut self) -> ServeSummary {
        if let Some(acceptor) = self.acceptor.take() {
            // A panicked acceptor already detached its listener; the
            // summary below still reflects everything that was served.
            // lint: allow(swallowed-result): thread panics surface via metrics, not propagation
            let _joined = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            // lint: allow(swallowed-result): thread panics surface via metrics, not propagation
            let _joined = worker.join();
        }
        let rec = &self.shared.rec;
        ServeSummary {
            requests: rec.counter(keys::SERVE_REQUESTS),
            cache_hits: rec.counter(keys::SERVE_CACHE_HITS),
            cache_misses: rec.counter(keys::SERVE_CACHE_MISSES),
            rejected: rec.counter(keys::SERVE_REJECTED_BACKPRESSURE)
                + rec.counter(keys::SERVE_REJECTED_DEADLINE),
        }
    }

    /// [`Server::request_shutdown`] followed by [`Server::join`].
    pub fn shutdown_and_join(self) -> ServeSummary {
        self.request_shutdown();
        self.join()
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener) {
    for conn in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        shared.rec.incr(keys::SERVE_REQUESTS);
        let job = Job {
            stream,
            enqueued: Instant::now(),
            rec: Recorder::new(),
        };
        match shared.queue.try_push(job) {
            Ok(depth) => {
                shared.rec.gauge(keys::SERVE_QUEUE_DEPTH, depth as f64);
                shared
                    .rec
                    .gauge_max(keys::SERVE_QUEUE_DEPTH_MAX, depth as f64);
            }
            Err(PushError::Full(job) | PushError::Closed(job)) => {
                shared.rec.incr(keys::SERVE_REJECTED_BACKPRESSURE);
                shared.flight.note(
                    keys::FLIGHT_BACKPRESSURE,
                    format!(
                        "503: worker queue full (capacity {})",
                        shared.queue.capacity()
                    ),
                );
                shared.dump_flight(keys::FLIGHT_BACKPRESSURE);
                respond_overloaded(job.stream, "worker queue is full");
            }
        }
    }
    shared.queue.close();
}

/// Writes the backpressure rejection directly from the acceptor — the
/// one response that must never wait for a worker.
fn respond_overloaded(mut stream: TcpStream, why: &str) {
    // lint: allow(swallowed-result): the socket may already be gone; rejection is best-effort
    let _sent = Response::new(503, format!("overloaded: {why}\n"))
        .with_header("Retry-After", "1")
        .write_to(&mut stream);
}

fn worker_loop(shared: &Shared, worker: usize) {
    let mut seq = 0usize;
    while let Some(job) = shared.queue.pop() {
        shared
            .rec
            .gauge(keys::SERVE_QUEUE_DEPTH, shared.queue.len() as f64);
        seq += 1;
        handle_job(shared, worker, seq, job);
    }
}

fn handle_job(shared: &Shared, worker: usize, seq: usize, mut job: Job) {
    let t0 = Instant::now();
    let busy = shared.busy.fetch_add(1, Ordering::SeqCst) + 1;
    shared.rec.gauge(keys::SERVE_WORKERS_BUSY, busy as f64);
    // The time between accept and pickup, injected as the trace's first
    // span (its start predates every recorder call on this request).
    job.rec
        .record_span(keys::SPAN_SERVE_QUEUE_WAIT, "serve", job.enqueued, t0);
    // lint: allow(swallowed-result): timeouts are best-effort hardening
    let _rt = job.stream.set_read_timeout(Some(IO_TIMEOUT));
    // lint: allow(swallowed-result): timeouts are best-effort hardening
    let _wt = job.stream.set_write_timeout(Some(IO_TIMEOUT));
    let response = match http::read_request(&mut job.stream) {
        Ok(request) => route(shared, worker, seq, &request, job.enqueued, &job.rec),
        Err(e) => Response::new(400, format!("bad request: {e}\n")),
    };
    let class = match response.status {
        200..=299 => keys::SERVE_HTTP_2XX,
        400..=499 => keys::SERVE_HTTP_4XX,
        _ => keys::SERVE_HTTP_5XX,
    };
    shared.rec.incr(class);
    shared
        .rec
        .observe(keys::SERVE_REQUEST_US, t0.elapsed().as_secs_f64() * 1e6);
    // Fold the request's metrics (planner counters, histograms) into
    // the shared registry before the client sees the response, so a
    // follow-up `GET /metrics` cannot race past them. Spans stay with
    // the request (already parked in the trace store when traced).
    shared.rec.absorb(&job.rec);
    // lint: allow(swallowed-result): the client may have hung up; nothing to salvage
    let _sent = response.write_to(&mut job.stream);
    let busy = shared.busy.fetch_sub(1, Ordering::SeqCst).saturating_sub(1);
    shared.rec.gauge(keys::SERVE_WORKERS_BUSY, busy as f64);
}

fn route(
    shared: &Shared,
    worker: usize,
    seq: usize,
    request: &Request,
    enqueued: Instant,
    rec: &Recorder,
) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::new(200, "ok\n"),
        ("GET", "/metrics") => metrics_response(shared),
        ("GET", path) => {
            if let Some(digest) = path.strip_prefix("/v1/plan/") {
                lookup_response(shared, digest)
            } else if let Some(id) = path.strip_prefix("/v1/trace/") {
                trace_response(shared, id)
            } else {
                Response::new(404, "not found\n")
            }
        }
        ("POST", "/v1/plan") => plan_response(shared, worker, seq, request, enqueued, rec),
        ("POST", "/admin/dump") => dump_response(shared),
        ("POST", "/admin/shutdown") => {
            shared.begin_shutdown();
            Response::new(
                200,
                "draining: new connections refused, in-flight work completes\n",
            )
        }
        ("POST", _) => Response::new(404, "not found\n"),
        _ => Response::new(405, "method not allowed\n"),
    }
}

fn lookup_response(shared: &Shared, digest: &str) -> Response {
    match shared.cache.get(digest) {
        Some(body) => {
            shared.rec.incr(keys::SERVE_CACHE_HITS);
            plan_ok(digest, &body, "hit")
        }
        None => Response::new(404, format!("no cached plan for digest {digest}\n")),
    }
}

fn trace_response(shared: &Shared, id: &str) -> Response {
    match shared.traces.get(id) {
        Some(trace_json) => Response::json(200, trace_json.to_string()),
        None => Response::new(
            404,
            format!(
                "no trace {id} (store retains the last {})\n",
                shared.traces.capacity()
            ),
        ),
    }
}

fn dump_response(shared: &Shared) -> Response {
    let json = flight::flight_json(
        &shared.flight.snapshot(),
        keys::FLIGHT_MANUAL,
        &[("component", "adapipe-serve")],
    );
    shared.dump_flight(keys::FLIGHT_MANUAL);
    Response::json(200, json)
}

fn plan_ok(digest: &str, body: &str, cache_state: &str) -> Response {
    Response::new(200, body)
        .with_header("X-Adapipe-Digest", digest)
        .with_header("X-Adapipe-Cache", cache_state)
}

fn request_error_response(e: &RequestError) -> Response {
    Response::new(400, format!("invalid plan request: {e}\n"))
}

fn plan_response(
    shared: &Shared,
    worker: usize,
    seq: usize,
    request: &Request,
    enqueued: Instant,
    rec: &Recorder,
) -> Response {
    let preq = {
        let _parse = rec.span_cat(keys::SPAN_SERVE_PARSE, "serve");
        match PlanRequest::parse(&request.body) {
            Ok(p) => p,
            Err(e) => return request_error_response(&e),
        }
    };
    let digest = preq.digest();
    let trace_id = shared.next_trace_id(&digest);

    if let Some(body) = shared.cache.get(&digest) {
        shared.rec.incr(keys::SERVE_CACHE_HITS);
        let response = plan_ok(&digest, &body, "hit").with_header(TRACE_HEADER, &trace_id);
        shared.store_trace(rec, &trace_id);
        return response;
    }

    // A request whose deadline already expired while it sat in the
    // queue is not worth planning: reject with backpressure semantics
    // so the caller retries against a hopefully-warmer cache.
    let deadline = preq.deadline.or(shared.cfg.default_deadline);
    let waited = MicroSecs::new(enqueued.elapsed().as_secs_f64() * 1e6);
    if let Some(limit) = deadline {
        if waited > limit {
            shared.rec.incr(keys::SERVE_REJECTED_DEADLINE);
            shared.flight.note_traced(
                keys::FLIGHT_DEADLINE,
                format!(
                    "503: deadline expired in queue ({:.0}us waited, {:.0}us budget)",
                    waited.as_micros(),
                    limit.as_micros()
                ),
                &trace_id,
            );
            shared.dump_flight(keys::FLIGHT_DEADLINE);
            shared.store_trace(rec, &trace_id);
            return Response::new(
                503,
                format!(
                    "deadline expired in queue: waited {:.0}us of a {:.0}us budget\n",
                    waited.as_micros(),
                    limit.as_micros()
                ),
            )
            .with_header("Retry-After", "1")
            .with_header(TRACE_HEADER, &trace_id);
        }
    }

    shared.rec.incr(keys::SERVE_CACHE_MISSES);
    if let Some(delay) = shared.cfg.plan_delay {
        std::thread::sleep(delay);
    }

    // The planner records into the *request* recorder: its span tree
    // lands in this request's trace, its metrics are absorbed into the
    // shared registry when the request completes. Every daemon planner
    // shares the exec pool and the process-global subproblem cache, so
    // cold plans prefill leaves in parallel and warm-start from leaves
    // any earlier request already solved (plans stay byte-identical —
    // docs/parallel.md).
    let planner = match preq.planner() {
        Ok(p) => p
            .with_recorder(rec.clone())
            .with_exec_pool(Arc::clone(&shared.exec))
            .with_shared_subcache(true),
        Err(e) => return request_error_response(&e),
    };
    let (method, parallel, train) = match (preq.method_enum(), preq.parallel(), preq.train()) {
        (Ok(m), Ok(p), Ok(t)) => (m, p, t),
        (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => return request_error_response(&e),
    };

    let t_plan = Instant::now();
    let plan = match planner.plan(method, parallel, train) {
        Ok(plan) => plan,
        Err(e) => {
            shared.store_trace(rec, &trace_id);
            return Response::new(422, format!("{method} cannot run at {parallel}: {e}\n"))
                .with_header(TRACE_HEADER, &trace_id);
        }
    };
    // The verification gate: nothing leaves the process unverified.
    let check = {
        let _verify = rec.span_cat(keys::SPAN_SERVE_VERIFY, "serve");
        planner.verify_with(&plan, VerifyOptions::default())
    };
    if check.has_errors() {
        shared.rec.incr(keys::SERVE_VERIFY_REJECTED);
        shared.flight.note_traced(
            keys::FLIGHT_VERIFY_REJECTED,
            format!("plan {digest} failed the verify gate"),
            &trace_id,
        );
        shared.dump_flight(keys::FLIGHT_VERIFY_REJECTED);
        shared.store_trace(rec, &trace_id);
        return Response::new(
            500,
            format!("planned artifact failed verification\n{check}"),
        )
        .with_header(TRACE_HEADER, &trace_id);
    }
    shared
        .rec
        .observe(keys::SERVE_PLAN_US, t_plan.elapsed().as_secs_f64() * 1e6);

    let body: Arc<str> = Arc::from(adapipe::plan_io::to_text(&plan));
    let evicted = {
        let _insert = rec.span_cat(keys::SPAN_SERVE_CACHE_INSERT, "serve");
        shared.cache.insert(&digest, Arc::clone(&body))
    };
    if evicted > 0 {
        shared.rec.add(keys::SERVE_CACHE_EVICTIONS, evicted);
    }

    let mut response = plan_ok(&digest, &body, "miss").with_header(TRACE_HEADER, &trace_id);
    if let Some(limit) = deadline {
        let total = MicroSecs::new(enqueued.elapsed().as_secs_f64() * 1e6);
        if total > limit {
            // Too late but not wasted: serve the plan, record the miss
            // for the watchdog to classify.
            shared.rec.incr(keys::SERVE_DEADLINE_MISSED);
            shared.record_deadline_miss(worker, seq, total, limit, &trace_id);
            response = response.with_header("X-Adapipe-Deadline", "missed");
        }
    }
    shared.store_trace(rec, &trace_id);
    response
}

fn metrics_response(shared: &Shared) -> Response {
    // lint: allow(swallowed-result): None only means "no traffic yet"
    let _iso = keys::publish_iso_cache_hit_rate(&shared.rec);
    // lint: allow(swallowed-result): None only means "no traffic yet"
    let _hit = keys::publish_serve_cache_hit_rate(&shared.rec);
    // lint: allow(swallowed-result): None only means "no traffic yet"
    let _sub = keys::publish_subcache_hit_rate(&shared.rec);
    publish_engine_gauges(shared);
    let diagnosis = shared.deadline_diagnosis();
    shared.rec.gauge(
        keys::SERVE_DEADLINE_PERSISTENT,
        diagnosis.persistent_stragglers.len() as f64,
    );
    let workers = shared.cfg.workers.to_string();
    let cache_capacity = shared.cache.capacity().to_string();
    let queue_depth = shared.queue.capacity().to_string();
    let snapshot = shared.rec.snapshot();
    let json = report::metrics_json(
        &snapshot,
        &[
            ("component", "adapipe-serve"),
            ("workers", &workers),
            ("cache_capacity", &cache_capacity),
            ("queue_depth", &queue_depth),
        ],
    );
    Response::json(200, json)
}

/// Publishes the execution-engine state — exec-pool counters and the
/// process-global subproblem cache — as gauges on the shared registry,
/// so `/metrics` and the serve bench artifact expose them.
fn publish_engine_gauges(shared: &Shared) {
    let pool = shared.exec.stats();
    let rec = &shared.rec;
    rec.gauge(keys::EXEC_POOL_WORKERS, convert::u64_f64(pool.workers));
    rec.gauge(keys::EXEC_POOL_BATCHES, convert::u64_f64(pool.batches));
    rec.gauge(keys::EXEC_POOL_TASKS, convert::u64_f64(pool.tasks));
    rec.gauge(keys::EXEC_POOL_STEALS, convert::u64_f64(pool.steals));
    rec.gauge(
        keys::EXEC_POOL_QUEUE_DEPTH_MAX,
        convert::u64_f64(pool.max_queue_depth),
    );
    let sub = subcache::global();
    rec.gauge(keys::SUBCACHE_ENTRIES, convert::count_f64(sub.len()));
    rec.gauge(keys::SUBCACHE_EVICTIONS, convert::u64_f64(sub.evictions()));
    rec.gauge(keys::SUBCACHE_BYTES, convert::u64_f64(sub.bytes()));
}
