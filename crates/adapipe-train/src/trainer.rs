// lint: allow-file(expect, index): worker threads and their channels are
// created together in Trainer::new; send/recv can only fail if a thread
// panicked, which the trainer surfaces by propagating the panic.
use crate::data::SyntheticCorpus;
use crate::pipeline::train_iteration_with;
use crate::stage::StageModule;
use crate::units::{build_layer_units, init_rng, Optimizer, TinyDims, UnitModule};
use adapipe_model::{LayerSeq, ModelSpec};

/// Learning-rate schedule for the miniature trainer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// The configured rate at every step.
    Constant,
    /// Linear warmup over `warmup` steps, then cosine decay to
    /// `floor · lr` at the final step — the schedule large-model
    /// pretraining jobs run.
    WarmupCosine {
        /// Warmup steps.
        warmup: usize,
        /// Final rate as a fraction of the peak.
        floor: f32,
    },
}

impl LrSchedule {
    /// The rate at 0-based `step` of `total` steps, given peak `lr`.
    #[must_use]
    pub fn rate(&self, lr: f32, step: usize, total: usize) -> f32 {
        match *self {
            LrSchedule::Constant => lr,
            LrSchedule::WarmupCosine { warmup, floor } => {
                if step < warmup {
                    lr * (step + 1) as f32 / warmup as f32
                } else if total <= warmup + 1 {
                    lr
                } else {
                    let progress = (step - warmup) as f32 / (total - warmup - 1).max(1) as f32;
                    let cos = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
                    lr * (floor + (1.0 - floor) * cos)
                }
            }
        }
    }
}

/// How each stage decides what to save.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecomputeMode {
    /// Save only pinned layer outputs (full recomputation).
    Full,
    /// Save every unit output (no recomputation).
    None,
    /// Explicit per-stage, per-unit saved flags — e.g. materialized from
    /// an AdaPipe [`RecomputeStrategy`](adapipe_recompute::RecomputeStrategy).
    Adaptive(Vec<Vec<bool>>),
}

/// Configuration of a miniature pipeline-parallel training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainerConfig {
    /// Model dimensions.
    pub dims: TinyDims,
    /// Number of decoder blocks.
    pub decoder_layers: usize,
    /// Pipeline stages.
    pub stages: usize,
    /// Tokens per micro-batch (micro-batch size is 1 sequence).
    pub seq_len: usize,
    /// Micro-batches per iteration.
    pub micro_batches: usize,
    /// Training iterations.
    pub steps: usize,
    /// SGD learning rate (ignored when `adam` is set).
    pub lr: f32,
    /// Use Adam instead of SGD.
    pub adam: bool,
    /// Learning-rate schedule applied on top of `lr`.
    pub schedule: LrSchedule,
    /// Seed for init and data.
    pub seed: u64,
    /// Recomputation mode.
    pub mode: RecomputeMode,
    /// Stage boundaries as layer ranges over the flat layer sequence
    /// (`None` = even partition).
    pub partition: Option<Vec<(usize, usize)>>,
}

impl TrainerConfig {
    /// A configuration small enough for unit tests (fractions of a
    /// second per run).
    #[must_use]
    pub fn tiny_for_tests() -> Self {
        TrainerConfig {
            dims: TinyDims {
                hidden: 16,
                heads: 2,
                kv_heads: 2,
                ffn_hidden: 32,
                vocab: 32,
                max_seq: 8,
                swiglu: false,
                dropout: 0.0,
            },
            decoder_layers: 2,
            stages: 2,
            seq_len: 8,
            micro_batches: 2,
            steps: 3,
            lr: 0.05,
            adam: false,
            schedule: LrSchedule::Constant,
            seed: 1234,
            mode: RecomputeMode::Full,
            partition: None,
        }
    }

    /// Same run with full recomputation.
    #[must_use]
    pub fn with_full_recompute(&self) -> Self {
        TrainerConfig {
            mode: RecomputeMode::Full,
            ..self.clone()
        }
    }

    /// Same run with no recomputation.
    #[must_use]
    pub fn with_no_recompute(&self) -> Self {
        TrainerConfig {
            mode: RecomputeMode::None,
            ..self.clone()
        }
    }

    /// Same run with explicit per-stage saved flags.
    #[must_use]
    pub fn with_adaptive(&self, flags: Vec<Vec<bool>>) -> Self {
        TrainerConfig {
            mode: RecomputeMode::Adaptive(flags),
            ..self.clone()
        }
    }

    /// Same run with explicit stage boundaries (inclusive layer ranges
    /// over `[Embedding, (Attn, Ffn)×L, Head]`).
    #[must_use]
    pub fn with_partition(&self, ranges: Vec<(usize, usize)>) -> Self {
        TrainerConfig {
            partition: Some(ranges),
            ..self.clone()
        }
    }

    /// The equivalent [`ModelSpec`], for driving the AdaPipe planner on
    /// the miniature model.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions are inconsistent (zero fields).
    #[must_use]
    pub fn model_spec(&self) -> ModelSpec {
        let ffn = if self.dims.swiglu {
            adapipe_model::FfnKind::SwiGlu
        } else {
            adapipe_model::FfnKind::Gelu
        };
        ModelSpec::builder("tiny-train")
            .hidden(self.dims.hidden)
            .heads(self.dims.heads)
            .kv_heads(self.dims.kv_heads)
            .ffn_hidden(self.dims.ffn_hidden)
            .vocab(self.dims.vocab)
            .decoder_layers(self.decoder_layers)
            .ffn(ffn)
            .build()
            .expect("trainer dims are valid")
    }
}

/// The result of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean loss per iteration, in order.
    pub losses: Vec<f32>,
}

impl TrainReport {
    /// Final loss.
    ///
    /// # Panics
    ///
    /// Panics if the run had zero steps.
    #[must_use]
    pub fn final_loss(&self) -> f32 {
        *self.losses.last().expect("at least one step")
    }
}

/// Runs a miniature pipeline-parallel training job.
///
/// Model initialization is a single seeded pass over the *whole* layer
/// sequence, independent of the partition — so runs that differ only in
/// stage boundaries or recomputation strategy start from bit-identical
/// parameters (and, since recomputation repeats identical kernels,
/// produce bit-identical losses; §7.5).
///
/// # Panics
///
/// Panics on inconsistent configuration (more stages than layers,
/// malformed partition or flags).
#[must_use]
pub fn train(cfg: &TrainerConfig) -> TrainReport {
    let spec = cfg.model_spec();
    let seq = LayerSeq::for_model(&spec);
    assert!(cfg.stages <= seq.len(), "more stages than layers");
    assert!(
        cfg.seq_len <= cfg.dims.max_seq,
        "seq_len {} exceeds the position table ({})",
        cfg.seq_len,
        cfg.dims.max_seq
    );

    // Build every layer's units in one deterministic pass.
    let mut rng = init_rng(cfg.seed);
    let mut per_layer: Vec<Vec<UnitModule>> = Vec::with_capacity(seq.len());
    for layer in seq.iter() {
        per_layer.push(build_layer_units(
            cfg.dims,
            layer.kind,
            layer.index,
            &mut rng,
        ));
    }

    // Stage boundaries.
    let ranges: Vec<(usize, usize)> = match &cfg.partition {
        Some(r) => {
            assert_eq!(r.len(), cfg.stages, "one range per stage");
            assert_eq!(r[0].0, 0, "partition must start at layer 0");
            assert_eq!(
                r[cfg.stages - 1].1,
                seq.len() - 1,
                "partition must end at the last layer"
            );
            for w in r.windows(2) {
                assert_eq!(w[1].0, w[0].1 + 1, "partition must be contiguous");
            }
            r.clone()
        }
        None => seq
            .even_partition(cfg.stages)
            .iter()
            .map(|lr| (lr.first, lr.last))
            .collect(),
    };

    // Assemble stages with their saved flags.
    let mut per_layer = per_layer.into_iter().map(Some).collect::<Vec<_>>();
    let mut stages: Vec<StageModule> = Vec::with_capacity(cfg.stages);
    for (s, &(first, last)) in ranges.iter().enumerate() {
        let mut units = Vec::new();
        for slot in &mut per_layer[first..=last] {
            units.extend(slot.take().expect("each layer assigned once"));
        }
        let saved: Vec<bool> = match &cfg.mode {
            RecomputeMode::Full => units.iter().map(UnitModule::is_pinned).collect(),
            RecomputeMode::None => vec![true; units.len()],
            RecomputeMode::Adaptive(flags) => {
                assert_eq!(flags.len(), cfg.stages, "one flag vector per stage");
                assert_eq!(
                    flags[s].len(),
                    units.len(),
                    "one flag per unit in stage {s}"
                );
                flags[s].clone()
            }
        };
        stages.push(StageModule::new(
            units,
            saved,
            cfg.dims.heads,
            cfg.dims.kv_heads,
            cfg.dims.dropout,
        ));
    }

    // Data and the training loop.
    let corpus = SyntheticCorpus::new(cfg.dims.vocab, 4 * cfg.seq_len, 0.02, cfg.seed ^ 0xDA7A);
    let opt = if cfg.adam {
        Optimizer::adam(cfg.lr)
    } else {
        Optimizer::Sgd { lr: cfg.lr }
    };
    let mut losses = Vec::with_capacity(cfg.steps);
    for step in 0..cfg.steps {
        let batches: Vec<(Vec<usize>, Vec<usize>)> = (0..cfg.micro_batches)
            .map(|m| corpus.batch(step, m, cfg.seq_len))
            .collect();
        losses.push(train_iteration_with(&mut stages, &batches, opt, step));
    }
    TrainReport { losses }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn losses_are_bit_identical_across_recompute_modes() {
        let cfg = TrainerConfig::tiny_for_tests();
        let full = train(&cfg.with_full_recompute());
        let none = train(&cfg.with_no_recompute());
        assert_eq!(full.losses, none.losses);
    }

    #[test]
    fn losses_are_bit_identical_across_partitions() {
        // Even [0..=2][3..=5] vs skewed [0..=1][2..=5]: same math, same
        // losses (§7.5 — the paper attributes its curve differences to
        // initialization, which we hold fixed).
        let cfg = TrainerConfig::tiny_for_tests();
        let even = train(&cfg);
        let skewed = train(&cfg.with_partition(vec![(0, 1), (2, 5)]));
        assert_eq!(even.losses, skewed.losses);
    }

    #[test]
    fn loss_decreases_over_training() {
        let mut cfg = TrainerConfig::tiny_for_tests();
        cfg.steps = 12;
        let report = train(&cfg);
        let early: f32 = report.losses[..3].iter().sum::<f32>() / 3.0;
        let late: f32 = report.losses[report.losses.len() - 3..].iter().sum::<f32>() / 3.0;
        assert!(late < early, "no learning: {:?}", report.losses);
    }

    #[test]
    fn adaptive_flags_must_cover_every_unit() {
        let cfg = TrainerConfig::tiny_for_tests();
        // Stage unit counts: [emb + attn + ffn] = 11, [attn + ffn + head] = 11.
        let spec = cfg.model_spec();
        let seq = LayerSeq::for_model(&spec);
        assert_eq!(seq.len(), 6);
        let flags = vec![vec![true; 11], vec![true; 11]];
        let report = train(&cfg.with_adaptive(flags));
        assert_eq!(report.losses.len(), cfg.steps);
    }

    #[test]
    fn adam_trains_and_is_recompute_invariant() {
        let mut cfg = TrainerConfig::tiny_for_tests();
        cfg.adam = true;
        cfg.lr = 0.01;
        cfg.steps = 8;
        let full = train(&cfg.with_full_recompute());
        let none = train(&cfg.with_no_recompute());
        assert_eq!(full.losses, none.losses);
        assert!(full.final_loss() < full.losses[0], "{:?}", full.losses);
    }

    #[test]
    fn dropout_training_is_recompute_invariant() {
        // The crux: dropout masks must replay identically when units are
        // recomputed, or gradients (and training) silently diverge.
        let mut cfg = TrainerConfig::tiny_for_tests();
        cfg.dims.dropout = 0.2;
        cfg.steps = 5;
        let full = train(&cfg.with_full_recompute());
        let none = train(&cfg.with_no_recompute());
        assert_eq!(full.losses, none.losses);
    }

    #[test]
    fn swiglu_gqa_model_trains_end_to_end() {
        let mut cfg = TrainerConfig::tiny_for_tests();
        cfg.dims.swiglu = true;
        cfg.dims.kv_heads = 1;
        cfg.steps = 10;
        cfg.lr = 0.05;
        let full = train(&cfg.with_full_recompute());
        let none = train(&cfg.with_no_recompute());
        assert_eq!(full.losses, none.losses);
        let early: f32 = full.losses[..3].iter().sum::<f32>() / 3.0;
        let late: f32 = full.losses[full.losses.len() - 3..].iter().sum::<f32>() / 3.0;
        assert!(
            late < early,
            "swiglu model did not learn: {:?}",
            full.losses
        );
    }

    #[test]
    fn warmup_cosine_schedule_shapes_the_rate() {
        let sched = LrSchedule::WarmupCosine {
            warmup: 4,
            floor: 0.1,
        };
        let total = 20;
        // Ramps up...
        assert!(sched.rate(1.0, 0, total) < sched.rate(1.0, 3, total));
        assert!((sched.rate(1.0, 3, total) - 1.0).abs() < 1e-6);
        // ...then decays monotonically to the floor.
        let mut last = f32::INFINITY;
        for step in 4..total {
            let r = sched.rate(1.0, step, total);
            assert!(r <= last + 1e-6, "step {step}");
            last = r;
        }
        assert!((last - 0.1).abs() < 1e-5, "final {last}");
        assert_eq!(LrSchedule::Constant.rate(0.3, 7, total), 0.3);
    }

    #[test]
    fn scheduled_training_remains_recompute_invariant() {
        let mut cfg = TrainerConfig::tiny_for_tests();
        cfg.schedule = LrSchedule::WarmupCosine {
            warmup: 2,
            floor: 0.05,
        };
        cfg.steps = 6;
        let full = train(&cfg.with_full_recompute());
        let none = train(&cfg.with_no_recompute());
        assert_eq!(full.losses, none.losses);
    }

    #[test]
    fn different_seeds_give_different_curves() {
        let mut cfg = TrainerConfig::tiny_for_tests();
        let a = train(&cfg);
        cfg.seed = 999;
        let b = train(&cfg);
        assert_ne!(a.losses, b.losses);
    }
}
