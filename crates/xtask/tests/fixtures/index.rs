pub fn first(xs: &[usize]) -> usize {
    xs[0]
}
