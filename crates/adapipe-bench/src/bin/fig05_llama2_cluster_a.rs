//! Figure 5: Llama 2 (70B) end-to-end performance on cluster A
//! (32 A100 GPUs), all methods, sequence lengths 4096/8192/16384.

fn main() {
    adapipe_bench::cluster_a::run(adapipe_model::presets::llama2_70b(), 32, "Figure 5");
}
