//! Offload-aware hybrid strategies — an extension in the direction of
//! the §8 related work (SuperNeurons, MPress combine recomputation with
//! host offloading; the paper contrasts against them but searches only
//! save-vs-recompute).
//!
//! Each unit now has three choices:
//!
//! * **Save** — costs `Mem(U)` device bytes, no time.
//! * **Recompute** — free of memory, re-pays `Time_f(U)` in backward.
//! * **Offload** — free of device memory, pays the PCIe round trip
//!   `2·Mem(U)/bw` discounted by the fraction that overlaps compute.
//!
//! Observation: saving a unit avoids `min(Time_f(U), transfer(U))` of
//! penalty — whichever evacuation is cheaper — so the §4.3 knapsack
//! applies unchanged with that as the item value. Unsaved units then
//! independently pick the cheaper evacuation. The aggregate PCIe budget
//! is checked post-hoc (a stage cannot ship more bytes than the bus
//! moves during its compute window); violations fall back to
//! recomputation, preserving feasibility.

use crate::error::StrategyError;
use crate::knapsack::KnapsackConfig;
use crate::strategy::RecomputeStrategy;
use adapipe_profiler::UnitProfile;
use adapipe_units::{Bytes, BytesPerSec, MicroSecs};
use serde::{Deserialize, Serialize};

/// Host-offload link description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OffloadLink {
    /// Device↔host bandwidth (PCIe 4.0 ×16 ≈ 25 GB/s effective).
    pub bandwidth: BytesPerSec,
    /// Fraction of each transfer hidden under compute (0 = fully
    /// exposed, 1 = free).
    pub overlap: f64,
}

impl OffloadLink {
    /// PCIe 4.0 ×16 with 50 % overlap — a typical tuned setup.
    #[must_use]
    pub fn pcie4() -> Self {
        OffloadLink {
            bandwidth: BytesPerSec::new(25e9),
            overlap: 0.5,
        }
    }

    /// Exposed round-trip time for `bytes` (store in forward + fetch in
    /// backward), after overlap.
    #[must_use]
    pub fn round_trip(&self, bytes: Bytes) -> MicroSecs {
        (bytes / self.bandwidth) * (2.0 * (1.0 - self.overlap))
    }
}

/// What happens to one unit's intermediates under a hybrid strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnitDecision {
    /// Kept on the device.
    Saved,
    /// Dropped and recomputed in backward.
    Recomputed,
    /// Evacuated to host memory and fetched back for backward.
    Offloaded,
}

/// A per-stage hybrid strategy plus its cost accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HybridStage {
    /// Per-unit decisions, in execution order.
    pub decisions: Vec<UnitDecision>,
    /// Forward time (unchanged by the strategy).
    pub time_f: MicroSecs,
    /// Backward time including recomputation and exposed transfers.
    pub time_b: MicroSecs,
    /// Device bytes of saved intermediates per micro-batch.
    pub saved_bytes_per_mb: Bytes,
    /// Host bytes shipped per micro-batch.
    pub offloaded_bytes_per_mb: Bytes,
}

impl HybridStage {
    /// Number of units per decision kind: `(saved, recomputed, offloaded)`.
    #[must_use]
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for d in &self.decisions {
            match d {
                UnitDecision::Saved => c.0 += 1,
                UnitDecision::Recomputed => c.1 += 1,
                UnitDecision::Offloaded => c.2 += 1,
            }
        }
        c
    }
}

/// Optimizes a hybrid save/recompute/offload strategy for one stage
/// under a per-micro-batch device budget.
///
/// # Errors
///
/// Returns [`StrategyError::OutOfMemory`] when pinned units alone exceed
/// the budget (offloading never applies to pinned units — they are the
/// recompute anchors).
pub fn optimize_hybrid(
    units: &[UnitProfile],
    budget_per_mb: Bytes,
    link: OffloadLink,
) -> Result<HybridStage, StrategyError> {
    // Evacuation penalty per unit: the cheaper of recompute / offload.
    let penalty: Vec<MicroSecs> = units
        .iter()
        .map(|u| u.time_f.min(link.round_trip(u.mem_saved)))
        .collect();

    // Reuse the §4.3 knapsack with the hybrid penalty as the value:
    // build a shadow unit table whose time_f is the avoidable penalty.
    let shadow: Vec<UnitProfile> = units
        .iter()
        .zip(&penalty)
        .map(|(u, &p)| UnitProfile { time_f: p, ..*u })
        .collect();
    let opt = crate::knapsack::optimize_with(&shadow, budget_per_mb, KnapsackConfig::default())?;

    // Materialize decisions; compute the exact hybrid cost from the
    // real unit table.
    let mut decisions = Vec::with_capacity(units.len());
    let mut time_f = MicroSecs::ZERO;
    let mut time_b = MicroSecs::ZERO;
    let mut saved_bytes = Bytes::ZERO;
    let mut offloaded_bytes = Bytes::ZERO;
    for (i, u) in units.iter().enumerate() {
        time_f += u.time_f;
        time_b += u.time_b;
        if opt.strategy.is_saved(i) {
            decisions.push(UnitDecision::Saved);
            saved_bytes = saved_bytes.saturating_add(u.mem_saved);
        } else if link.round_trip(u.mem_saved) < u.time_f {
            decisions.push(UnitDecision::Offloaded);
            offloaded_bytes = offloaded_bytes.saturating_add(u.mem_saved);
            time_b += link.round_trip(u.mem_saved);
        } else {
            decisions.push(UnitDecision::Recomputed);
            time_b += u.time_f;
        }
    }

    // PCIe budget check: the bus can ship at most bandwidth × compute
    // time per micro-batch; beyond that, transfers cannot hide even
    // partially — demote the *least* profitable offloads to recompute.
    let window: Bytes = (time_f + time_b) * link.bandwidth;
    if !(offloaded_bytes * 2).fits(window) {
        let mut offloads: Vec<usize> = decisions
            .iter()
            .enumerate()
            .filter(|(_, d)| **d == UnitDecision::Offloaded)
            .map(|(i, _)| i)
            .collect();
        // Least profit first: smallest (time_f − round_trip).
        offloads.sort_by(|&a, &b| {
            let pa = units[a].time_f - link.round_trip(units[a].mem_saved);
            let pb = units[b].time_f - link.round_trip(units[b].mem_saved);
            pa.as_micros().total_cmp(&pb.as_micros())
        });
        for i in offloads {
            if (offloaded_bytes * 2).fits(window) {
                break;
            }
            decisions[i] = UnitDecision::Recomputed;
            offloaded_bytes = offloaded_bytes.saturating_sub(units[i].mem_saved);
            time_b -= link.round_trip(units[i].mem_saved);
            time_b += units[i].time_f;
        }
    }

    Ok(HybridStage {
        decisions,
        time_f,
        time_b,
        saved_bytes_per_mb: saved_bytes,
        offloaded_bytes_per_mb: offloaded_bytes,
    })
}

/// Projects a hybrid stage onto a plain save/recompute strategy
/// (offloaded units count as recomputed for engines without an offload
/// path).
#[must_use]
pub fn as_recompute_strategy(units: &[UnitProfile], hybrid: &HybridStage) -> RecomputeStrategy {
    let flags = hybrid
        .decisions
        .iter()
        .map(|d| *d == UnitDecision::Saved)
        .collect();
    RecomputeStrategy::from_flags(units, flags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize;
    use adapipe_hw::presets as hw;
    use adapipe_model::{presets, LayerRange, ParallelConfig, TrainConfig};
    use adapipe_profiler::Profiler;

    fn units() -> Vec<UnitProfile> {
        let model = presets::gpt3_175b();
        let parallel = ParallelConfig::new(8, 8, 1).unwrap();
        let train = TrainConfig::new(1, 4096, 128).unwrap();
        let table = Profiler::new(hw::cluster_a()).profile(&model, &parallel, &train);
        table.units_in(LayerRange::new(1, 24))
    }

    #[test]
    fn offloading_never_hurts_backward_time() {
        let us = units();
        let all: Bytes = us.iter().map(|u| u.mem_saved).sum();
        for frac in [20u64, 40, 60, 80] {
            let budget = all * frac / 100;
            let plain = optimize(&us, budget).unwrap();
            let hybrid = optimize_hybrid(&us, budget, OffloadLink::pcie4()).unwrap();
            assert!(
                hybrid.time_b <= plain.cost.time_b + MicroSecs::new(1e-3),
                "frac {frac}: hybrid {} vs plain {}",
                hybrid.time_b,
                plain.cost.time_b
            );
            assert!(hybrid.saved_bytes_per_mb <= budget);
        }
    }

    #[test]
    fn zero_overlap_slow_bus_degenerates_to_recompute() {
        let us = units();
        let all: Bytes = us.iter().map(|u| u.mem_saved).sum();
        // A bus so slow that every round trip costs more than recompute.
        let link = OffloadLink {
            bandwidth: BytesPerSec::new(1e6),
            overlap: 0.0,
        };
        let hybrid = optimize_hybrid(&us, all / 2, link).unwrap();
        let (_, _, offloaded) = hybrid.counts();
        assert_eq!(offloaded, 0);
        let plain = optimize(&us, all / 2).unwrap();
        assert!((hybrid.time_b - plain.cost.time_b).abs() < MicroSecs::new(1e-3));
    }

    #[test]
    fn infinitely_fast_bus_offloads_everything_unsaved() {
        let us = units();
        let all: Bytes = us.iter().map(|u| u.mem_saved).sum();
        let link = OffloadLink {
            bandwidth: BytesPerSec::new(1e18),
            overlap: 0.0,
        };
        let hybrid = optimize_hybrid(&us, all / 4, link).unwrap();
        let (_, recomputed, offloaded) = hybrid.counts();
        assert_eq!(recomputed, 0, "free transfers beat all recomputes");
        assert!(offloaded > 0);
        // Backward collapses to the no-recompute floor.
        let base: MicroSecs = us.iter().map(|u| u.time_b).sum();
        assert!((hybrid.time_b - base).abs() < MicroSecs::new(1.0));
    }

    #[test]
    fn pcie_budget_demotes_excess_offloads() {
        let us = units();
        let all: Bytes = us.iter().map(|u| u.mem_saved).sum();
        // Fast enough that offload beats recompute per unit, but so
        // little window that the aggregate cannot fit.
        let link = OffloadLink {
            bandwidth: BytesPerSec::new(5e9),
            overlap: 0.999,
        };
        let hybrid = optimize_hybrid(&us, all / 4, link).unwrap();
        let window = (hybrid.time_f + hybrid.time_b) * link.bandwidth;
        assert!(
            (hybrid.offloaded_bytes_per_mb * 2).fits(window.saturating_add(Bytes::new(1))),
            "offloaded {} vs window {window}",
            hybrid.offloaded_bytes_per_mb
        );
    }

    #[test]
    fn projection_keeps_saved_set() {
        let us = units();
        let all: Bytes = us.iter().map(|u| u.mem_saved).sum();
        let hybrid = optimize_hybrid(&us, all / 2, OffloadLink::pcie4()).unwrap();
        let plain = as_recompute_strategy(&us, &hybrid);
        for (i, d) in hybrid.decisions.iter().enumerate() {
            assert_eq!(plain.is_saved(i), *d == UnitDecision::Saved);
        }
    }

    #[test]
    fn oom_still_surfaces() {
        let us = units();
        assert!(matches!(
            optimize_hybrid(&us, Bytes::ZERO, OffloadLink::pcie4()),
            Err(StrategyError::OutOfMemory { .. })
        ));
    }
}
