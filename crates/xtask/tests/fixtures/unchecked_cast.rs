//! Fixture: bare `as` numeric casts in a cost crate must fire
//! `unchecked-cast`.

pub fn cost_math(n: usize, bytes: u64, t: f64) -> f64 {
    let scale = n as f64;
    let cells = bytes as usize;
    let ticks = t as u64;
    scale + cells as f64 + ticks as f64
}

pub fn sanctioned_spellings(n: usize, x: f64) -> u64 {
    // Identifiers containing `as` and renames do not match the rule.
    let micros = duration.as_micros();
    let wide = u64::try_from(n).unwrap_or(u64::MAX);
    let floor = adapipe_units::convert::f64_u64_clamped(x);
    // A cast inside a string stays masked: "n as f64".
    wide + floor + micros
}
