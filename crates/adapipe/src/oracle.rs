//! Brute-force planner verification: oracle agreement sweeps and
//! counterexample search.
//!
//! Algorithm 1 + the recomputation knapsack promise *near-optimal* plans
//! (the DP's per-stage objective weighs the bottleneck heuristically, so
//! it is not exact — see `adapipe_partition::exhaustive`). This module
//! turns that promise into a checked property three ways:
//!
//! 1. [`check_grid_agreement`] — a pinned grid of deterministic synthetic
//!    instances on which the DP must stay inside the calibrated gap band
//!    of the exhaustive partition oracle, and must never *beat* it
//!    (beating brute force means the cost model itself diverged).
//! 2. [`check_model_grid`] — the same comparison through the full
//!    profiler → memory model → recomputation pipeline on `tiny-gpt`
//!    instances, with the knapsack replaced by subset enumeration
//!    ([`OracleCostProvider`]) so *both* DP levels are checked at once.
//! 3. [`search_counterexamples`] — a seeded random search over small
//!    synthetic instances; any violation is greedily shrunk to a minimal
//!    reproducer ([`Counterexample`]) whose text form lands in
//!    `tests/golden/counterexamples/` and replays forever after as a
//!    regression test.
//!
//! The CLI (`adapipe verify --optimality`) and the CI `optimality` job
//! drive all three; `docs/verification.md` explains the calibrated band.

// lint: allow-file(swallowed-result): fmt::Write into a String cannot fail

use adapipe_check::{CheckCode, Diagnostic};
use adapipe_hw::presets as hw;
use adapipe_memory::{MemoryModel, OptimizerSpec};
use adapipe_model::{presets, LayerRange, LayerSeq, ParallelConfig, TrainConfig};
use adapipe_obs::{keys, Recorder};
use adapipe_partition::{
    algorithm1, exhaustive, KnapsackCostProvider, OracleCostProvider, StageCostProvider, StageTimes,
};
use adapipe_profiler::{ProfileTable, Profiler};
use adapipe_units::{convert, Bytes, MicroSecs};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Relative float slack for oracle comparisons (absorbs summation-order
/// noise between the DP's and the oracle's cost evaluations).
const ORACLE_TOLERANCE: f64 = 1e-9;

/// Calibrated worst-case ratio `DP / oracle` for Algorithm 1. The
/// heuristic per-stage objective misjudges split points most when the
/// pipeline is barely filled; the band was calibrated empirically by the
/// `adapipe-partition` property tests and is re-verified here.
#[must_use]
pub fn gap_band(p: usize, n: usize) -> f64 {
    if n < 2 * p {
        1.10
    } else {
        1.05
    }
}

/// A synthetic Eq. (3) instance: per-layer forward/backward times in
/// microseconds, `p` stages, `n` micro-batches. Stage times are window
/// sums, so the recomputation level collapses away and the instance
/// exercises exactly the partitioning DP.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticInstance {
    /// Pipeline stages `p`.
    pub stages: usize,
    /// Micro-batches `n` per iteration.
    pub micro_batches: usize,
    /// Per-layer `(forward, backward)` times in microseconds.
    pub layer_times: Vec<(f64, f64)>,
}

struct SyntheticProvider<'a> {
    layer_times: &'a [(f64, f64)],
}

impl StageCostProvider for SyntheticProvider<'_> {
    fn stage_times(&self, _stage: usize, range: LayerRange) -> Option<StageTimes> {
        let window = &self.layer_times[range.first..=range.last];
        Some(StageTimes {
            f: MicroSecs::new(window.iter().map(|(f, _)| f).sum()),
            b: MicroSecs::new(window.iter().map(|(_, b)| b).sum()),
        })
    }
}

impl SyntheticInstance {
    /// Iteration time Algorithm 1 finds for this instance.
    #[must_use]
    pub fn dp_time(&self) -> Option<MicroSecs> {
        let provider = SyntheticProvider {
            layer_times: &self.layer_times,
        };
        algorithm1::solve(
            &provider,
            self.layer_times.len(),
            self.stages,
            self.micro_batches,
        )
        .map(|plan| plan.iteration_time())
    }

    /// Iteration time of the provably best contiguous partition.
    #[must_use]
    pub fn oracle_time(&self) -> Option<MicroSecs> {
        let provider = SyntheticProvider {
            layer_times: &self.layer_times,
        };
        exhaustive::solve(
            &provider,
            self.layer_times.len(),
            self.stages,
            self.micro_batches,
        )
        .map(|plan| plan.iteration_time())
    }

    /// Whether the DP currently violates the agreement contract on this
    /// instance: worse than the calibrated band, or better than brute
    /// force (a cost-model bug).
    #[must_use]
    pub fn violates(&self) -> bool {
        let (Some(dp), Some(oracle)) = (self.dp_time(), self.oracle_time()) else {
            return false;
        };
        let band = gap_band(self.stages, self.micro_batches);
        let slack = MicroSecs::new(ORACLE_TOLERANCE * oracle.as_micros().max(1.0));
        dp > oracle * band + slack || dp < oracle - slack
    }
}

/// The pinned agreement grid: deterministic instances spanning barely
/// filled (`n = p`) through steady-dominated pipelines, skewed and
/// near-uniform layer times. Frozen so CI verdicts are reproducible;
/// extend it when a counterexample teaches us a new shape.
#[must_use]
pub fn pinned_grid() -> Vec<SyntheticInstance> {
    let shapes: &[(usize, usize, usize, u64)] = &[
        (6, 2, 8, 1),
        (7, 3, 6, 2),
        (8, 4, 8, 3),
        (9, 3, 20, 4),
        (10, 4, 12, 5),
        (8, 2, 16, 6),
        (12, 5, 5, 7),
        (10, 5, 40, 8),
    ];
    shapes
        .iter()
        .map(|&(l, p, n, seed)| {
            let mut rng = SplitMix64::new(seed);
            SyntheticInstance {
                stages: p,
                micro_batches: n,
                layer_times: (0..l)
                    .map(|_| (rng.f64_in(0.2, 3.0), rng.f64_in(0.2, 3.0)))
                    .collect(),
            }
        })
        .collect()
}

/// Sweeps [`pinned_grid`], reporting an [`CheckCode::OptimalityGap`]
/// diagnostic for every instance where the DP leaves the calibrated band
/// or beats the oracle. Counters land on `rec` under `oracle.*`.
#[must_use]
pub fn check_grid_agreement(rec: &Recorder) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (idx, inst) in pinned_grid().iter().enumerate() {
        rec.incr(keys::ORACLE_INSTANCES);
        let (Some(dp), Some(oracle)) = (inst.dp_time(), inst.oracle_time()) else {
            out.push(Diagnostic::error(
                CheckCode::OptimalityGap,
                None,
                format!("pinned grid instance {idx} is unexpectedly infeasible"),
            ));
            continue;
        };
        rec.observe(
            keys::ORACLE_GAP_PCT,
            (dp.as_micros() / oracle.as_micros() - 1.0) * 100.0,
        );
        if inst.violates() {
            rec.incr(keys::ORACLE_DISAGREEMENTS);
            out.push(Diagnostic::error(
                CheckCode::OptimalityGap,
                None,
                format!(
                    "pinned grid instance {idx} (L={} p={} n={}): dp {dp} vs oracle {oracle} \
                     leaves the {:.2} band",
                    inst.layer_times.len(),
                    inst.stages,
                    inst.micro_batches,
                    gap_band(inst.stages, inst.micro_batches)
                ),
            ));
        }
    }
    out
}

/// A [`StageCostProvider`] that marks windows with more free units than
/// the oracle can enumerate infeasible. Wrapping *both* the DP's and the
/// oracle's providers in the same cap keeps the two searches optimizing
/// the identical restricted instance — the comparison stays apples to
/// apples even though the oracle cannot price arbitrarily wide windows.
struct CappedProvider<'a, P> {
    inner: &'a P,
    table: &'a ProfileTable,
    cap: usize,
}

impl<P: StageCostProvider> StageCostProvider for CappedProvider<'_, P> {
    fn stage_times(&self, stage: usize, range: LayerRange) -> Option<StageTimes> {
        let free = self
            .table
            .units_in(range)
            .iter()
            .filter(|u| !u.is_pinned() && u.mem_saved > Bytes::ZERO)
            .count();
        if free > self.cap {
            return None;
        }
        self.inner.stage_times(stage, range)
    }
}

/// Free-unit cap for [`check_model_grid`] windows. Tighter than
/// [`adapipe_recompute::exhaustive::MAX_ORACLE_FREE_UNITS`] so the
/// 2^free subset enumeration stays fast even in debug builds; on
/// `tiny-gpt` every `p ∈ {2, 3, 4}` partition still has full coverage
/// (a 5-layer half of the model holds exactly 16 sized free units).
const MODEL_GRID_FREE_CAP: usize = 16;

/// The pinned real-model grid: `(pipeline, micro_batches)` shapes on
/// `tiny-gpt` small enough for the joint (partition × recompute) oracle.
#[must_use]
pub fn model_grid() -> Vec<(usize, usize)> {
    vec![(2, 8), (3, 6), (4, 12)]
}

/// Runs the joint oracle — exhaustive partition search over
/// exhaustively optimized stages — against the production DP stack
/// (Algorithm 1 over knapsack-optimized stages) on every [`model_grid`]
/// instance. Both sides see the same window cap (`CappedProvider`) and
/// the same profiler, memory model and capacity, so a disagreement
/// indicts the DPs and nothing else.
#[must_use]
pub fn check_model_grid(rec: &Recorder) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let model = presets::tiny_gpt();
    let cluster = hw::cluster_a();
    let capacity = Bytes::from_gib(2);
    for (p, n) in model_grid() {
        rec.incr(keys::ORACLE_INSTANCES);
        let parallel = match ParallelConfig::new(1, p, 1) {
            Ok(c) => c,
            Err(e) => {
                out.push(Diagnostic::error(
                    CheckCode::OptimalityGap,
                    None,
                    format!("model grid (p={p}, n={n}): invalid parallelism: {e}"),
                ));
                continue;
            }
        };
        let Ok(train) = TrainConfig::new(1, 128, n) else {
            out.push(Diagnostic::error(
                CheckCode::OptimalityGap,
                None,
                format!("model grid (p={p}, n={n}): invalid workload"),
            ));
            continue;
        };
        let table = Profiler::new(cluster.clone()).profile(&model, &parallel, &train);
        let seq = LayerSeq::for_model(&model);
        let mem = MemoryModel::new(model.clone(), parallel, OptimizerSpec::adam_fp32());

        let dp_inner = KnapsackCostProvider::new(&seq, &table, &mem, capacity);
        let dp_provider = CappedProvider {
            inner: &dp_inner,
            table: &table,
            cap: MODEL_GRID_FREE_CAP,
        };
        let oracle_inner = OracleCostProvider::new(&seq, &table, &mem, capacity);
        let oracle_provider = CappedProvider {
            inner: &oracle_inner,
            table: &table,
            cap: MODEL_GRID_FREE_CAP,
        };

        let dp = algorithm1::solve(&dp_provider, seq.len(), p, n).map(|pl| pl.iteration_time());
        let oracle =
            exhaustive::solve(&oracle_provider, seq.len(), p, n).map(|pl| pl.iteration_time());
        match (dp, oracle) {
            (Some(dp), Some(oracle)) => {
                let band = gap_band(p, n);
                let slack = MicroSecs::new(ORACLE_TOLERANCE * oracle.as_micros().max(1.0));
                rec.observe(
                    keys::ORACLE_GAP_PCT,
                    (dp.as_micros() / oracle.as_micros() - 1.0) * 100.0,
                );
                if dp > oracle * band + slack || dp < oracle - slack {
                    rec.incr(keys::ORACLE_DISAGREEMENTS);
                    out.push(Diagnostic::error(
                        CheckCode::OptimalityGap,
                        None,
                        format!(
                            "model grid tiny-gpt (p={p}, n={n}): dp {dp} vs joint oracle \
                             {oracle} leaves the {band:.2} band"
                        ),
                    ));
                }
            }
            (dp, oracle) => {
                rec.incr(keys::ORACLE_DISAGREEMENTS);
                out.push(Diagnostic::error(
                    CheckCode::OptimalityGap,
                    None,
                    format!(
                        "model grid tiny-gpt (p={p}, n={n}): feasibility disagreement \
                         (dp {dp:?} vs joint oracle {oracle:?})"
                    ),
                ));
            }
        }
    }
    out
}

/// Header line of the counterexample reproducer format.
pub const COUNTEREXAMPLE_HEADER: &str = "adapipe-counterexample v1";

/// A shrunk oracle/DP disagreement: the minimal instance the search
/// found, plus the times observed when it was recorded. The text form is
/// what lands under `tests/golden/counterexamples/`.
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// The minimal violating instance.
    pub instance: SyntheticInstance,
    /// DP iteration time when the counterexample was recorded.
    pub dp_time: MicroSecs,
    /// Oracle iteration time when the counterexample was recorded.
    pub oracle_time: MicroSecs,
    /// The seed of the search run that found it.
    pub seed: u64,
}

impl Counterexample {
    /// Serializes to the reproducer text format.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::from(COUNTEREXAMPLE_HEADER);
        out.push('\n');
        let _ = writeln!(out, "seed = {}", self.seed);
        let _ = writeln!(out, "stages = {}", self.instance.stages);
        let _ = writeln!(out, "micro_batches = {}", self.instance.micro_batches);
        for (f, b) in &self.instance.layer_times {
            let _ = writeln!(out, "layer = {f} {b}");
        }
        let _ = writeln!(out, "dp_time = {}", self.dp_time.as_micros());
        let _ = writeln!(out, "oracle_time = {}", self.oracle_time.as_micros());
        out
    }

    /// Parses the reproducer text format.
    ///
    /// # Errors
    ///
    /// [`CounterexampleParseError`] on malformed or incomplete input.
    pub fn from_text(text: &str) -> Result<Counterexample, CounterexampleParseError> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        if lines.next().map(str::trim) != Some(COUNTEREXAMPLE_HEADER) {
            return Err(CounterexampleParseError::BadHeader);
        }
        let mut seed = None;
        let mut stages = None;
        let mut micro_batches = None;
        let mut dp_time = None;
        let mut oracle_time = None;
        let mut layer_times = Vec::new();
        for line in lines {
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| CounterexampleParseError::BadLine(line.to_string()))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = || CounterexampleParseError::BadValue {
                key: key.to_string(),
                value: value.to_string(),
            };
            match key {
                "seed" => seed = Some(value.parse().map_err(|_| bad())?),
                "stages" => stages = Some(value.parse().map_err(|_| bad())?),
                "micro_batches" => micro_batches = Some(value.parse().map_err(|_| bad())?),
                "dp_time" => dp_time = Some(MicroSecs::new(value.parse().map_err(|_| bad())?)),
                "oracle_time" => {
                    oracle_time = Some(MicroSecs::new(value.parse().map_err(|_| bad())?));
                }
                "layer" => {
                    let (f, b) = value.split_once(' ').ok_or_else(bad)?;
                    layer_times.push((
                        f.trim().parse().map_err(|_| bad())?,
                        b.trim().parse().map_err(|_| bad())?,
                    ));
                }
                _ => return Err(CounterexampleParseError::BadLine(line.to_string())),
            }
        }
        if layer_times.is_empty() {
            return Err(CounterexampleParseError::Missing("layer"));
        }
        Ok(Counterexample {
            instance: SyntheticInstance {
                stages: stages.ok_or(CounterexampleParseError::Missing("stages"))?,
                micro_batches: micro_batches
                    .ok_or(CounterexampleParseError::Missing("micro_batches"))?,
                layer_times,
            },
            dp_time: dp_time.ok_or(CounterexampleParseError::Missing("dp_time"))?,
            oracle_time: oracle_time.ok_or(CounterexampleParseError::Missing("oracle_time"))?,
            seed: seed.ok_or(CounterexampleParseError::Missing("seed"))?,
        })
    }
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L={} p={} n={}: dp {} vs oracle {} (seed {})",
            self.instance.layer_times.len(),
            self.instance.stages,
            self.instance.micro_batches,
            self.dp_time,
            self.oracle_time,
            self.seed
        )
    }
}

/// Error from [`Counterexample::from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CounterexampleParseError {
    /// The header line is missing or names an unknown version.
    BadHeader,
    /// A required key is absent.
    Missing(&'static str),
    /// A line is not `key = value`.
    BadLine(String),
    /// A value failed to parse.
    BadValue {
        /// The key in question.
        key: String,
        /// The raw value.
        value: String,
    },
}

impl fmt::Display for CounterexampleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CounterexampleParseError::BadHeader => {
                write!(f, "missing or unsupported counterexample header")
            }
            CounterexampleParseError::Missing(key) => write!(f, "missing key `{key}`"),
            CounterexampleParseError::BadLine(line) => write!(f, "malformed line `{line}`"),
            CounterexampleParseError::BadValue { key, value } => {
                write!(f, "bad value for `{key}`: `{value}`")
            }
        }
    }
}

impl Error for CounterexampleParseError {}

/// Bounds for the random instance generator: small enough that the
/// exhaustive partition oracle stays fast, wide enough to cover the
/// shapes Algorithm 1 is known to find hard (barely filled pipelines).
#[derive(Debug, Clone, Copy)]
pub struct OracleBounds {
    /// Largest layer count to generate.
    pub max_layers: usize,
    /// Largest stage count to generate.
    pub max_stages: usize,
    /// Largest `n − p` to generate.
    pub max_extra_microbatches: usize,
}

impl Default for OracleBounds {
    fn default() -> Self {
        OracleBounds {
            max_layers: 11,
            max_stages: 5,
            max_extra_microbatches: 16,
        }
    }
}

/// Searches `iterations` seeded random instances for DP/oracle
/// disagreements, shrinking each hit to a minimal reproducer. An empty
/// result is the expected (passing) outcome; hits should be committed
/// under `tests/golden/counterexamples/` and the band re-calibrated or
/// the DP fixed. Counters land on `rec` under `oracle.*`.
#[must_use]
pub fn search_counterexamples(
    seed: u64,
    iterations: usize,
    bounds: &OracleBounds,
    rec: &Recorder,
) -> Vec<Counterexample> {
    let mut rng = SplitMix64::new(seed);
    let mut hits = Vec::new();
    for _ in 0..iterations {
        rec.incr(keys::ORACLE_INSTANCES);
        let p = 2 + rng.below(bounds.max_stages.saturating_sub(1).max(1));
        let l = p.max(4) + rng.below(bounds.max_layers.saturating_sub(p.max(4)) + 1);
        let n = p + rng.below(bounds.max_extra_microbatches + 1);
        let inst = SyntheticInstance {
            stages: p,
            micro_batches: n,
            layer_times: (0..l)
                .map(|_| (rng.f64_in(0.2, 3.0), rng.f64_in(0.2, 3.0)))
                .collect(),
        };
        if let (Some(dp), Some(oracle)) = (inst.dp_time(), inst.oracle_time()) {
            rec.observe(
                keys::ORACLE_GAP_PCT,
                (dp.as_micros() / oracle.as_micros() - 1.0) * 100.0,
            );
        }
        if inst.violates() {
            rec.incr(keys::ORACLE_DISAGREEMENTS);
            let minimal = shrink(inst);
            let (dp, oracle) = (
                minimal.dp_time().unwrap_or(MicroSecs::ZERO),
                minimal.oracle_time().unwrap_or(MicroSecs::ZERO),
            );
            hits.push(Counterexample {
                instance: minimal,
                dp_time: dp,
                oracle_time: oracle,
                seed,
            });
        }
    }
    hits
}

/// Greedy shrink: repeatedly drop layers, walk `n` down toward `p` and
/// round layer times to coarse grids — keeping each step only while the
/// instance still violates — until no step applies.
#[must_use]
pub fn shrink(mut inst: SyntheticInstance) -> SyntheticInstance {
    debug_assert!(inst.violates(), "shrinking a non-violating instance");
    loop {
        let mut progressed = false;
        // Drop one layer at a time (left to right restarts each pass).
        let mut i = 0;
        while inst.layer_times.len() > inst.stages.max(2) && i < inst.layer_times.len() {
            let mut candidate = inst.clone();
            candidate.layer_times.remove(i);
            if candidate.violates() {
                inst = candidate;
                progressed = true;
            } else {
                i += 1;
            }
        }
        // Walk n toward the 1F1B minimum.
        while inst.micro_batches > inst.stages {
            let mut candidate = inst.clone();
            candidate.micro_batches -= 1;
            if candidate.violates() {
                inst = candidate;
                progressed = true;
            } else {
                break;
            }
        }
        // Snap times to coarse grids (whole units, then halves).
        for scale in [1.0, 2.0] {
            let mut candidate = inst.clone();
            for (f, b) in &mut candidate.layer_times {
                *f = ((*f * scale).round() / scale).max(1.0 / scale);
                *b = ((*b * scale).round() / scale).max(1.0 / scale);
            }
            if candidate != inst && candidate.violates() {
                inst = candidate;
                progressed = true;
            }
        }
        if !progressed {
            return inst;
        }
    }
}

/// SplitMix64 (Steele et al.): tiny, seedable, reproducible across
/// platforms — all the counterexample search needs from an RNG.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)` (`0` when `n == 0`).
    fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        convert::u64_usize_saturating(self.next() % convert::usize_u64(n))
    }

    /// Uniform in `[lo, hi)`.
    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = convert::u64_f64(self.next() >> 11) / convert::u64_f64(1 << 53);
        lo + unit * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_grid_is_deterministic_and_in_band() {
        assert_eq!(pinned_grid(), pinned_grid());
        let diags = check_grid_agreement(&Recorder::disabled());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn model_grid_agrees() {
        let rec = Recorder::new();
        let diags = check_model_grid(&rec);
        assert!(diags.is_empty(), "{diags:?}");
        let snap = rec.snapshot();
        assert_eq!(
            snap.counters.get(keys::ORACLE_INSTANCES).copied(),
            Some(model_grid().len() as u64)
        );
        assert_eq!(snap.counters.get(keys::ORACLE_DISAGREEMENTS), None);
    }

    #[test]
    fn search_finds_nothing_on_the_default_bounds() {
        let rec = Recorder::new();
        let hits = search_counterexamples(0xada_715e, 64, &OracleBounds::default(), &rec);
        assert!(hits.is_empty(), "unexpected counterexamples: {hits:?}");
        let snap = rec.snapshot();
        assert_eq!(snap.counters.get(keys::ORACLE_INSTANCES).copied(), Some(64));
    }

    #[test]
    fn search_is_deterministic() {
        let rec = Recorder::disabled();
        let a = search_counterexamples(7, 16, &OracleBounds::default(), &rec);
        let b = search_counterexamples(7, 16, &OracleBounds::default(), &rec);
        assert_eq!(a, b);
    }

    #[test]
    fn counterexample_text_round_trips() {
        let cx = Counterexample {
            instance: SyntheticInstance {
                stages: 3,
                micro_batches: 6,
                layer_times: vec![(1.25, 2.5), (0.75, 1.0), (2.0, 3.5), (1.0, 1.0)],
            },
            dp_time: MicroSecs::new(42.5),
            oracle_time: MicroSecs::new(40.0),
            seed: 99,
        };
        let parsed = Counterexample::from_text(&cx.to_text()).expect("round-trip");
        assert_eq!(cx, parsed);
    }

    #[test]
    fn counterexample_parse_rejects_garbage() {
        assert_eq!(
            Counterexample::from_text("nope\n"),
            Err(CounterexampleParseError::BadHeader)
        );
        let no_layers = format!("{COUNTEREXAMPLE_HEADER}\nseed = 1\nstages = 2\nmicro_batches = 4\ndp_time = 1\noracle_time = 1\n");
        assert_eq!(
            Counterexample::from_text(&no_layers),
            Err(CounterexampleParseError::Missing("layer"))
        );
        let bad_layer = format!("{COUNTEREXAMPLE_HEADER}\nlayer = 1.0\n");
        assert!(matches!(
            Counterexample::from_text(&bad_layer),
            Err(CounterexampleParseError::BadValue { .. })
        ));
        let unknown = format!("{COUNTEREXAMPLE_HEADER}\nwat = 1\n");
        assert!(matches!(
            Counterexample::from_text(&unknown),
            Err(CounterexampleParseError::BadLine(_))
        ));
    }

    #[test]
    fn uniform_instances_never_violate() {
        // Balanced instances are the closed-form case Eq. (3) solves
        // exactly, so the DP must match the oracle outright there.
        for p in 2..=4 {
            for extra in [0, 1, 8] {
                let inst = SyntheticInstance {
                    stages: p,
                    micro_batches: p + extra,
                    layer_times: vec![(1.0, 2.0); 2 * p],
                };
                let dp = inst.dp_time().expect("feasible");
                let oracle = inst.oracle_time().expect("feasible");
                assert!((dp.as_micros() - oracle.as_micros()).abs() < 1e-9);
                assert!(!inst.violates());
            }
        }
    }
}
