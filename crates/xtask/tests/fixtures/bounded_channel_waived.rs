//! Fixture: a justified waiver silences `bounded-channel`.

pub fn spawn_workers() {
    // lint: allow(bounded-channel): drained to empty before every push, depth <= 1
    let (tx, rx) = mpsc::channel();
    // lint: allow(bounded-channel): rebuilt from a bounded snapshot each step
    let backlog: VecDeque<Job> = VecDeque::new();
    drop((tx, rx, backlog));
}
