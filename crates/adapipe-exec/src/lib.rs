//! Deterministic execution primitives for the AdaPipe planner.
//!
//! A cold plan runs thousands of independent per-window recomputation
//! knapsacks (`partition.leaf_evals`); this crate supplies the two
//! pieces that turn them from a serial bottleneck into shared,
//! parallel work without ever changing a plan byte:
//!
//! * [`ExecPool`] — a seeded, deterministic work-stealing fork-join
//!   pool built on scoped `std::thread` workers with `Mutex`/`Condvar`
//!   index deques. [`ExecPool::map`] always returns results in input
//!   order and contains task panics into a typed [`ExecError`], so a
//!   poisoned leaf cannot deadlock or abort the daemon. Thread count
//!   comes from `ADAPIPE_THREADS` (see [`ExecPool::from_env`]).
//! * [`ShardedCache`] — a sharded, LRU-bounded map from 32-byte
//!   content digests to shared values, with exact hit/miss/eviction
//!   counters and approximate byte accounting. The planner keys it
//!   with [`sha256`] over a canonical subproblem encoding so *similar*
//!   models share knapsack leaves across requests
//!   (`adapipe-partition`'s global subproblem cache).
//!
//! Determinism is the design law, not an accident: the pool only
//! distributes *indices* of a pre-enumerated task list and writes each
//! result into its own slot, so scheduling order (and therefore thread
//! count, steal order, or seed) can never reorder, drop, or duplicate
//! work. `docs/parallel.md` spells out the argument end to end.
//!
//! Like `adapipe-units`, this crate is dependency-free so every layer
//! above it can use it without weight.

#![forbid(unsafe_code)]

pub mod cache;
pub mod pool;
pub mod sha;
pub mod stats;

pub use cache::ShardedCache;
pub use pool::{ExecError, ExecPool, PoolStats};
pub use sha::{sha256, sha256_hex};
pub use stats::CacheStats;
