pub fn read(x: Option<usize>) -> usize {
    // lint: allow(unwrap): length checked by the caller
    x.unwrap()
}
