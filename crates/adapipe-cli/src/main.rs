//! `adapipe` — the command-line planner.
//!
//! ```bash
//! adapipe plan --model gpt3 --tensor 8 --pipeline 8 --seq 16384 --global-batch 32
//! adapipe sweep --model llama2 --nodes 4 --seq 8192 --global-batch 64
//! adapipe compare --model gpt2 --nodes 1 --tensor 2 --pipeline 4 --seq 1024 --global-batch 32
//! adapipe chaos --faults faults.txt --tensor 2 --pipeline 4 --seq 1024 --global-batch 32
//! adapipe models
//! ```
//!
//! Exit codes: `0` ok, `1` artifact rejected (failed verification,
//! over-budget simulation, unrecovered chaos run), `2` internal error
//! (bad flags, unreadable files, invalid configurations).

mod args;
mod commands;
mod config;
mod report_html;

use args::Args;
use std::process::ExitCode;

/// Internal/usage errors (exit code 2), as distinct from artifact
/// rejections (1).
const EXIT_INTERNAL: u8 = 2;

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(subcommand) = argv.next() else {
        eprint!("{}", commands::USAGE);
        return ExitCode::from(EXIT_INTERNAL);
    };
    if matches!(subcommand.as_str(), "-h" | "--help" | "help") {
        print!("{}", commands::USAGE);
        return ExitCode::SUCCESS;
    }
    let rest: Vec<String> = argv.collect();
    let parsed = match Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{}", commands::USAGE);
            return ExitCode::from(EXIT_INTERNAL);
        }
    };
    let result = match subcommand.as_str() {
        "plan" => commands::plan(parsed),
        "sweep" => commands::sweep(parsed),
        "compare" => commands::compare(parsed),
        "show" => commands::show(parsed),
        "verify" => commands::verify(parsed),
        "sim" => commands::sim(parsed),
        "chaos" => commands::chaos(parsed),
        "trace" => commands::trace(parsed),
        "serve" => commands::serve(parsed),
        "report" => commands::report(parsed),
        "query" => commands::query(parsed),
        "models" => commands::models(parsed),
        other => {
            eprintln!("error: unknown subcommand `{other}`\n");
            eprint!("{}", commands::USAGE);
            return ExitCode::from(EXIT_INTERNAL);
        }
    };
    match result {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
