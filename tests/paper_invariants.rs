//! Integration tests asserting the *shapes* of the paper's tables and
//! figures — the qualitative claims every regenerated experiment must
//! reproduce.

use adapipe::{Method, Planner};
use adapipe_hw::presets as hw;
use adapipe_model::{presets, ParallelConfig, TrainConfig};
use adapipe_units::{Bytes, MicroSecs};

/// The Table 4 / Figure 8 / Figure 9 configuration.
fn table4_setup() -> (Planner, ParallelConfig, TrainConfig) {
    (
        Planner::new(presets::gpt3_175b(), hw::cluster_a()),
        ParallelConfig::new(8, 8, 1).expect("valid"),
        TrainConfig::new(1, 16384, 32).expect("valid"),
    )
}

#[test]
fn figure1_memory_imbalance_shape() {
    let planner = Planner::new(presets::gpt3_175b(), hw::cluster_a());
    let parallel = ParallelConfig::new(8, 8, 1).expect("valid");
    let capacity = planner.capacity();

    let peaks = |seq: usize, gbs: usize, method: Method| -> Vec<Bytes> {
        let train = TrainConfig::new(1, seq, gbs).expect("valid");
        let plan = planner.plan(method, parallel, train).expect("plans");
        planner.evaluate(&plan).peak_bytes_per_device
    };

    for (seq, gbs) in [(4096usize, 128usize), (8192, 64), (16384, 32)] {
        let non = peaks(seq, gbs, Method::DappleNone);
        // No-recomputation memory declines with the stage id over the
        // interior stages (first/last also hold embedding/head).
        for w in non[1..7].windows(2) {
            assert!(w[0] > w[1], "seq {seq}: {non:?}");
        }
        // Imbalance: stage 0 uses much more than the last stage.
        assert!(
            non[0].as_f64() / non[7].as_f64() > 1.2,
            "seq {seq}: {non:?}"
        );
        // Full recomputation is much flatter and far lower everywhere.
        let full = peaks(seq, gbs, Method::DappleFull);
        for (a, b) in non.iter().zip(&full) {
            assert!(a > b, "seq {seq}");
        }
        let spread = full[1..7]
            .iter()
            .max()
            .unwrap()
            .saturating_sub(*full[1..7].iter().min().unwrap());
        assert!(
            spread < capacity / 10,
            "full recompute should be nearly flat"
        );
    }

    // Memory grows with sequence length and eventually exceeds the device.
    let p4k = peaks(4096, 128, Method::DappleNone)[0];
    let p16k = peaks(16384, 32, Method::DappleNone)[0];
    assert!(p16k > p4k);
    assert!(p16k > capacity, "16k no-recompute must OOM (Figure 1)");
    assert!(peaks(4096, 128, Method::DappleFull)[0] < capacity);
}

#[test]
fn table4_saved_units_and_layer_shift() {
    let (planner, parallel, train) = table4_setup();
    let ada = planner
        .plan(Method::AdaPipe, parallel, train)
        .expect("plans");
    let even = planner
        .plan(Method::EvenPartitioning, parallel, train)
        .expect("plans");

    // Saved units increase (weakly) along the interior pipeline for both.
    for plan in [&ada, &even] {
        let saved = plan.saved_units_per_stage();
        for w in saved[1..7].windows(2) {
            assert!(w[0] <= w[1], "{:?}", saved);
        }
        assert!(saved[1] < saved[6], "{saved:?}");
    }
    // Even partitioning balances layer counts to within one.
    let even_layers = even.layers_per_stage();
    let (lo, hi) = (
        even_layers.iter().min().copied().unwrap(),
        even_layers.iter().max().copied().unwrap(),
    );
    assert!(hi - lo <= 1, "{even_layers:?}");
    // Both assign all 194 layers.
    assert_eq!(ada.layers_per_stage().iter().sum::<usize>(), 194);
    assert_eq!(even_layers.iter().sum::<usize>(), 194);
}

#[test]
fn figure9_microstep_flattening() {
    let (planner, parallel, train) = table4_setup();
    let spread = |m| {
        let plan = planner.plan(m, parallel, train).expect("plans");
        let steps: Vec<MicroSecs> = plan.stages.iter().map(|s| s.micro_step()).collect();
        steps.iter().copied().fold(MicroSecs::ZERO, MicroSecs::max)
            / steps
                .iter()
                .copied()
                .fold(MicroSecs::new(f64::INFINITY), MicroSecs::min)
    };
    let even = spread(Method::EvenPartitioning);
    let ada = spread(Method::AdaPipe);
    // Even partitioning is imbalanced (paper: 1.17x); AdaPipe flattens it.
    assert!(even > 1.08, "even partitioning spread {even}");
    assert!(ada < even, "adapipe {ada} vs even {even}");

    // And Even Partitioning's micro-step *decreases* along the interior
    // stages (front stages recompute more).
    let plan = planner
        .plan(Method::EvenPartitioning, parallel, train)
        .expect("plans");
    let steps: Vec<MicroSecs> = plan.stages.iter().map(|s| s.micro_step()).collect();
    assert!(steps[1] > steps[6], "{steps:?}");
}

#[test]
fn figure5_chimera_trails_dapple_with_many_microbatches() {
    // Llama 2 on 4 nodes, seq 4096, n = 128 >> p: the Chimera variants
    // must not beat DAPPLE (§7.2's concatenation-bubble analysis).
    let planner = Planner::new(presets::llama2_70b(), hw::cluster_a_with_nodes(4));
    let parallel = ParallelConfig::new(8, 4, 1).expect("valid");
    let train = TrainConfig::new(1, 4096, 128).expect("valid");
    let time = |m| {
        let plan = planner.plan(m, parallel, train).expect("plans");
        planner.evaluate(&plan).iteration_time
    };
    let dapple = time(Method::DappleFull);
    assert!(time(Method::ChimeraFull) > dapple);
    assert!(time(Method::ChimeraDFull) > dapple);
}

#[test]
fn figure8_chimera_memory_exceeds_dapple() {
    let (planner, parallel, train) = table4_setup();
    let peak = |m| {
        let plan = planner.plan(m, parallel, train).expect("plans");
        planner.evaluate(&plan).max_peak_gb()
    };
    // Parameter replication: Chimera-Full outweighs DAPPLE-Full.
    assert!(peak(Method::ChimeraFull) > peak(Method::DappleFull));
}

#[test]
fn cluster_b_speedups_match_paper_band() {
    // Llama 2 on 128 NPUs: the paper reports AdaPipe up to 1.22x over
    // the best DAPPLE; require at least 1.05x and at most 2x in our
    // reproduction (shape, not absolute fidelity).
    let planner = Planner::new(presets::llama2_70b(), hw::cluster_b_with_nodes(16))
        .with_optimizer(adapipe_memory::OptimizerSpec::adam_fp32_grad_accum());
    let parallel = ParallelConfig::new(4, 8, 4).expect("valid");
    let train = TrainConfig::new(1, 4096, 256).expect("valid");
    let full = planner
        .plan(Method::DappleFull, parallel, train)
        .expect("plans");
    let full_eval = planner.evaluate(&full);
    assert!(full_eval.fits);
    let non = planner
        .plan(Method::DappleNone, parallel, train)
        .expect("plans");
    assert!(!planner.evaluate(&non).fits, "DAPPLE-Non must OOM on 32 GB");
    let ada = planner
        .plan(Method::AdaPipe, parallel, train)
        .expect("plans");
    let speedup = planner.evaluate(&ada).speedup_over(&full_eval);
    assert!((1.05..2.0).contains(&speedup), "speedup {speedup}");
}
