//! Concurrency contract of the observability layer: writers hammering
//! counters, histograms and the flight ring while another thread
//! snapshots must never deadlock, lose updates, or tear a
//! [`HistogramSummary`]. All of it under `#![forbid(unsafe_code)]` —
//! the only synchronization primitive in play is a poisoning-immune
//! `Mutex`, so these tests are a loom-free stress harness plus
//! property tests over the histogram's summary invariants.

use adapipe_obs::{FlightRecorder, Recorder, StreamingHistogram};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

const WRITERS: usize = 4;
const OPS_PER_WRITER: u64 = 10_000;

/// Every increment lands: concurrent writers on a shared key and on
/// per-thread keys, with a snapshot thread spinning the whole time.
#[test]
fn counters_are_exact_under_contention() {
    let rec = Recorder::new();
    let stop = Arc::new(AtomicBool::new(false));
    let snapshotter = {
        let rec = rec.clone();
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut snaps = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = rec.snapshot();
                // A mid-flight snapshot sees some prefix of the updates,
                // never more than the final total.
                assert!(
                    snap.counters.get("shared").copied().unwrap_or(0)
                        <= WRITERS as u64 * OPS_PER_WRITER
                );
                snaps += 1;
            }
            snaps
        })
    };
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let rec = rec.clone();
            thread::spawn(move || {
                for _ in 0..OPS_PER_WRITER {
                    rec.add("shared", 1);
                    rec.incr(&format!("writer.{w}"));
                }
            })
        })
        .collect();
    for t in writers {
        t.join().expect("writer panicked");
    }
    stop.store(true, Ordering::Relaxed);
    let snaps = snapshotter.join().expect("snapshotter panicked");
    assert!(snaps > 0, "snapshot thread never ran");

    let snap = rec.snapshot();
    assert_eq!(
        snap.counters.get("shared").copied(),
        Some(WRITERS as u64 * OPS_PER_WRITER)
    );
    for w in 0..WRITERS {
        assert_eq!(
            snap.counters.get(&format!("writer.{w}")).copied(),
            Some(OPS_PER_WRITER),
            "writer {w} lost increments"
        );
    }
}

/// A summary read mid-stream is always internally consistent — the
/// quantiles are ordered, bounded by the observed extrema, and the
/// totals never exceed what has been recorded. A torn summary (e.g.
/// p95 from one generation, max from another) would violate these.
#[test]
fn snapshots_never_tear_a_histogram_summary() {
    const LO: f64 = 1.0;
    const HI: f64 = 1e6;
    let rec = Recorder::new();
    let stop = Arc::new(AtomicBool::new(false));
    let checker = {
        let rec = rec.clone();
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut checked = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = rec.snapshot();
                if let Some(h) = snap.histograms.get("lat") {
                    assert!(h.p50 <= h.p95, "p50 {} > p95 {}", h.p50, h.p95);
                    assert!(h.p95 <= h.p99, "p95 {} > p99 {}", h.p95, h.p99);
                    assert!(h.p99 <= h.max, "p99 {} > max {}", h.p99, h.max);
                    assert!(h.max <= HI, "max {} above any recorded value", h.max);
                    assert!(h.p50 >= LO * 0.9, "p50 {} below any recorded value", h.p50);
                    assert!(h.count <= WRITERS as u64 * OPS_PER_WRITER);
                    assert!(
                        h.sum <= h.count as f64 * HI + 1e-6,
                        "sum {} impossible for count {}",
                        h.sum,
                        h.count
                    );
                    checked += 1;
                }
            }
            checked
        })
    };
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let rec = rec.clone();
            thread::spawn(move || {
                // Deterministic per-thread log-spread values in [LO, HI].
                let mut x = 0x9e37_79b9_7f4a_7c15u64 ^ (w as u64) << 32 | 1;
                for _ in 0..OPS_PER_WRITER {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let unit = (x >> 11) as f64 / (1u64 << 53) as f64;
                    rec.observe("lat", LO * (HI / LO).powf(unit));
                }
            })
        })
        .collect();
    for t in writers {
        t.join().expect("writer panicked");
    }
    stop.store(true, Ordering::Relaxed);
    let checked = checker.join().expect("checker panicked");
    assert!(checked > 0, "checker never saw the histogram");
    let snap = rec.snapshot();
    let h = snap.histograms.get("lat").expect("histogram exists");
    assert_eq!(h.count, WRITERS as u64 * OPS_PER_WRITER);
}

/// The flight ring stays bounded under concurrent noters and accounts
/// every overwritten event in `dropped`.
#[test]
fn flight_ring_is_bounded_and_accounts_drops() {
    const CAPACITY: usize = 64;
    let flight = FlightRecorder::new(CAPACITY);
    let stop = Arc::new(AtomicBool::new(false));
    let watcher = {
        let flight = flight.clone();
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let snap = flight.snapshot();
                assert!(snap.events.len() <= CAPACITY);
                assert_eq!(snap.capacity, CAPACITY);
            }
        })
    };
    let noters: Vec<_> = (0..WRITERS)
        .map(|w| {
            let flight = flight.clone();
            thread::spawn(move || {
                for i in 0..OPS_PER_WRITER {
                    flight.note("stress", format!("writer {w} event {i}"));
                }
            })
        })
        .collect();
    for t in noters {
        t.join().expect("noter panicked");
    }
    stop.store(true, Ordering::Relaxed);
    watcher.join().expect("watcher panicked");

    let snap = flight.snapshot();
    let total = WRITERS as u64 * OPS_PER_WRITER;
    assert_eq!(snap.events.len(), CAPACITY);
    assert_eq!(
        snap.dropped + snap.events.len() as u64,
        total,
        "every note is either retained or counted as dropped"
    );
}

/// Cross-absorbing recorders while both sides take writes and
/// snapshots must not deadlock (absorb clones the donor under its own
/// lock, then folds — locks are never held nested).
#[test]
fn cross_absorb_is_deadlock_free() {
    let a = Recorder::new();
    let b = Recorder::new();
    let threads: Vec<_> = (0..2)
        .map(|dir| {
            let (src, dst) = if dir == 0 {
                (a.clone(), b.clone())
            } else {
                (b.clone(), a.clone())
            };
            thread::spawn(move || {
                for i in 0..500 {
                    src.incr("ticks");
                    src.observe("lat", f64::from(i) + 1.0);
                    dst.absorb(&src);
                    let _ = dst.snapshot();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("absorber panicked");
    }
    // Both registries end up with every key; totals are positive and
    // the process got here — no deadlock, no poisoned-lock panic.
    for rec in [&a, &b] {
        let snap = rec.snapshot();
        assert!(snap.counters.get("ticks").copied().unwrap_or(0) >= 500);
        assert!(snap.histograms.contains_key("lat"));
    }
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any in-range positive sample set (the buckets cover
        /// `2^-32..2^32`; outside that, values clamp and only the
        /// exact accumulators stay tight) yields an
        /// internally-consistent summary whose quantiles respect the
        /// documented relative error bound.
        #[test]
        fn summary_invariants_hold_for_arbitrary_samples(
            xs in proptest::collection::vec(1e-6f64..1e9, 1..400)
        ) {
            let mut hist = StreamingHistogram::new();
            for x in &xs {
                hist.record(*x);
            }
            let s = hist.summary();
            prop_assert_eq!(s.count, xs.len() as u64);
            prop_assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
            let exact_max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((s.max - exact_max).abs() <= exact_max * 1e-12, "max is exact");
            let exact_sum: f64 = xs.iter().sum();
            prop_assert!((s.sum - exact_sum).abs() <= exact_sum.abs() * 1e-9, "sum is exact");

            // Nearest-rank p50 against the documented bucket error.
            let mut sorted = xs.clone();
            sorted.sort_by(f64::total_cmp);
            let rank = ((sorted.len() - 1) as f64 * 0.5).round() as usize;
            let exact_p50 = sorted[rank];
            let bound = adapipe_obs::hist::quantile_error_bound() + 1e-9;
            prop_assert!(
                (s.p50 - exact_p50).abs() <= exact_p50 * bound,
                "p50 {} vs exact {} exceeds bound {}",
                s.p50, exact_p50, bound
            );
        }

        /// Merging partitions of a sample set is equivalent to one
        /// histogram observing everything (mergeability under any split).
        #[test]
        fn merge_is_partition_invariant(
            xs in proptest::collection::vec(1e-3f64..1e8, 2..200),
            split in 1usize..199
        ) {
            let split = split.min(xs.len() - 1);
            let mut whole = StreamingHistogram::new();
            for x in &xs {
                whole.record(*x);
            }
            let mut left = StreamingHistogram::new();
            let mut right = StreamingHistogram::new();
            for (i, x) in xs.iter().enumerate() {
                if i < split {
                    left.record(*x);
                } else {
                    right.record(*x);
                }
            }
            left.merge(&right);
            let (a, b) = (left.summary(), whole.summary());
            prop_assert_eq!(a.count, b.count);
            prop_assert!((a.sum - b.sum).abs() <= b.sum.abs() * 1e-9);
            prop_assert!((a.p50 - b.p50).abs() <= b.p50.abs() * 1e-12);
            prop_assert!((a.p95 - b.p95).abs() <= b.p95.abs() * 1e-12);
            prop_assert!((a.p99 - b.p99).abs() <= b.p99.abs() * 1e-12);
            prop_assert!((a.max - b.max).abs() <= b.max.abs() * 1e-12);
        }
    }
}
