//! Bounded in-memory store of per-request Chrome traces.
//!
//! Each `POST /v1/plan` request that reaches a worker records its own
//! span timeline (queue wait → parse → planner phases → verify → cache
//! insert) into a request-scoped recorder; the rendered Chrome-trace
//! JSON is parked here under the request's trace id so
//! `GET /v1/trace/{id}` can hand it back. The store is a FIFO ring:
//! capacity is fixed at construction and inserting past it evicts the
//! oldest trace, so trace retention — like every other buffer in this
//! daemon — is bounded no matter how long the process runs.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
struct Inner {
    order: VecDeque<String>,
    traces: HashMap<String, Arc<str>>,
}

/// A fixed-capacity, evict-oldest trace id → Chrome-trace JSON map.
#[derive(Debug)]
pub struct TraceStore {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl TraceStore {
    /// A store retaining at most `capacity` traces (floored at 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        TraceStore {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The retention bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of traces currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().order.len()
    }

    /// Whether the store holds no traces.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().order.is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panicked inserter must not wedge trace retrieval.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Stores `trace_json` under `id`, evicting the oldest trace when
    /// at capacity. Re-inserting an existing id replaces its trace
    /// without consuming extra capacity.
    pub fn insert(&self, id: &str, trace_json: Arc<str>) {
        let mut inner = self.lock();
        if inner.traces.insert(id.to_string(), trace_json).is_some() {
            return;
        }
        inner.order.push_back(id.to_string());
        if inner.order.len() > self.capacity {
            if let Some(old) = inner.order.pop_front() {
                inner.traces.remove(&old);
            }
        }
    }

    /// The trace stored under `id`, if still retained.
    #[must_use]
    pub fn get(&self, id: &str) -> Option<Arc<str>> {
        self.lock().traces.get(id).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn stores_and_retrieves_by_id() {
        let store = TraceStore::new(4);
        store.insert("a-1", arc("[1]"));
        assert_eq!(store.get("a-1").as_deref(), Some("[1]"));
        assert_eq!(store.get("missing"), None);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let store = TraceStore::new(2);
        store.insert("a", arc("[a]"));
        store.insert("b", arc("[b]"));
        store.insert("c", arc("[c]"));
        assert_eq!(store.get("a"), None, "oldest evicted");
        assert!(store.get("b").is_some() && store.get("c").is_some());
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn reinsert_replaces_without_consuming_capacity() {
        let store = TraceStore::new(2);
        store.insert("a", arc("[old]"));
        store.insert("a", arc("[new]"));
        store.insert("b", arc("[b]"));
        assert_eq!(store.get("a").as_deref(), Some("[new]"));
        assert!(store.get("b").is_some());
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn zero_capacity_is_floored_to_one() {
        let store = TraceStore::new(0);
        assert_eq!(store.capacity(), 1);
        store.insert("a", arc("[a]"));
        store.insert("b", arc("[b]"));
        assert_eq!(store.get("a"), None);
        assert!(store.get("b").is_some());
    }
}
