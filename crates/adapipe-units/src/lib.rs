//! Dimensional analysis as a type system for the AdaPipe cost pipeline.
//!
//! Every quantity the planner reasons about — per-unit forward/backward
//! times feeding the Eq. (1)–(2) knapsack, activation bytes against the
//! stage budget, the `T = W₀ + E₀ + (n−p)·M₀` recurrence of Algorithm 1 —
//! used to be a bare `f64` or `u64`, so a seconds/microseconds or
//! bytes/MiB mix-up type-checked silently and only surfaced as a wrong
//! plan. This crate makes unit confusion a *compile* error: each physical
//! dimension gets a `#[repr(transparent)]` newtype, and only the
//! dimensionally-legal arithmetic is implemented.
//!
//! The legal operations form a tiny algebra:
//!
//! | expression                     | result       | meaning                    |
//! |--------------------------------|--------------|----------------------------|
//! | [`Flops`] / [`FlopsPerSec`]    | [`MicroSecs`]| roofline math time         |
//! | [`Bytes`] / [`BytesPerSec`]    | [`MicroSecs`]| roofline / transfer time   |
//! | [`MicroSecs`] + [`MicroSecs`]  | [`MicroSecs`]| schedule composition       |
//! | [`MicroSecs`] * [`FlopsPerSec`]| [`Flops`]    | budgeted math (MFU)        |
//! | [`Bytes`] saturating/checked ± | [`Bytes`]    | memory accounting          |
//! | scalar `f64`/`u64` scaling     | same unit    | efficiencies, micro-batches|
//!
//! Cross-dimension operations simply do not compile:
//!
//! ```compile_fail
//! use adapipe_units::{Bytes, MicroSecs};
//! // Adding a memory footprint to a time is dimensional nonsense.
//! let _ = MicroSecs::new(1.0) + Bytes::new(1);
//! ```
//!
//! ```compile_fail
//! use adapipe_units::{Bytes, Flops, FlopsPerSec};
//! // Bytes are not Flops: the roofline math term rejects the swap.
//! let rate = FlopsPerSec::new(1e12);
//! let _ = Bytes::new(1024) / rate;
//! ```
//!
//! ```compile_fail
//! use adapipe_units::{Bytes, MicroSecs};
//! // The knapsack's value axis is time; passing the memory axis where
//! // time is expected fails to compile.
//! fn value_axis(saved: MicroSecs) -> MicroSecs { saved }
//! let _ = value_axis(Bytes::new(4096));
//! ```
//!
//! ```compile_fail
//! use adapipe_units::{LayerIdx, StageIdx};
//! // Index spaces do not mix either: a layer offset is not a stage.
//! fn stage(s: StageIdx) -> StageIdx { s }
//! let _ = stage(LayerIdx::new(3));
//! ```
//!
//! Fields are private on purpose. Escaping a newtype goes through a named
//! accessor (`as_secs`, `get`, …) so `xtask lint`'s `index-confusion`
//! rule can spot raw `.0` extraction, and `raw-quantity-in-api` keeps
//! bare `f64`/`u64` quantities out of public signatures.
//!
//! See `docs/units.md` for the mapping from these types to the paper's
//! symbols.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

// ---------------------------------------------------------------------------
// MicroSecs
// ---------------------------------------------------------------------------

/// A duration in microseconds — the native tick of the cost model.
///
/// Kernel times, pipeline-stage times and iteration times all live at the
/// microsecond-to-second scale, so storing µs keeps the mantissa busy with
/// significant digits instead of leading zeros. Construct from seconds
/// with [`MicroSecs::from_secs`] (profiling hardware knobs are usually
/// quoted in seconds) and read back with [`MicroSecs::as_secs`].
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[repr(transparent)]
pub struct MicroSecs(f64);

impl MicroSecs {
    /// Zero duration.
    pub const ZERO: MicroSecs = MicroSecs(0.0);

    /// A duration of `us` microseconds.
    #[must_use]
    pub const fn new(us: f64) -> Self {
        MicroSecs(us)
    }

    /// Converts from seconds (×10⁶).
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        MicroSecs(secs * 1e6)
    }

    /// Converts from milliseconds (×10³).
    #[must_use]
    pub fn from_millis(ms: f64) -> Self {
        MicroSecs(ms * 1e3)
    }

    /// The raw microsecond count.
    #[must_use]
    pub const fn as_micros(self) -> f64 {
        self.0
    }

    /// The duration in seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0 * 1e-6
    }

    /// The duration in milliseconds.
    #[must_use]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e-3
    }

    /// The larger of two durations (IEEE `max`: ignores a NaN operand).
    #[must_use]
    pub fn max(self, other: MicroSecs) -> MicroSecs {
        MicroSecs(self.0.max(other.0))
    }

    /// The smaller of two durations (IEEE `min`: ignores a NaN operand).
    #[must_use]
    pub fn min(self, other: MicroSecs) -> MicroSecs {
        MicroSecs(self.0.min(other.0))
    }

    /// Magnitude of the duration (useful for signed differences).
    #[must_use]
    pub fn abs(self) -> MicroSecs {
        MicroSecs(self.0.abs())
    }

    /// True unless the duration is NaN or ±∞.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// True when the duration is negative or NaN — never legal for a
    /// measured or modeled cost; verifiers use this to reject plans.
    #[must_use]
    pub fn is_invalid_cost(self) -> bool {
        self.0.is_nan() || self.0 < 0.0 || self.0.is_infinite()
    }
}

impl Add for MicroSecs {
    type Output = MicroSecs;
    fn add(self, rhs: MicroSecs) -> MicroSecs {
        MicroSecs(self.0 + rhs.0)
    }
}

impl AddAssign for MicroSecs {
    fn add_assign(&mut self, rhs: MicroSecs) {
        self.0 += rhs.0;
    }
}

impl Sub for MicroSecs {
    type Output = MicroSecs;
    fn sub(self, rhs: MicroSecs) -> MicroSecs {
        MicroSecs(self.0 - rhs.0)
    }
}

impl SubAssign for MicroSecs {
    fn sub_assign(&mut self, rhs: MicroSecs) {
        self.0 -= rhs.0;
    }
}

impl Neg for MicroSecs {
    type Output = MicroSecs;
    fn neg(self) -> MicroSecs {
        MicroSecs(-self.0)
    }
}

/// Scaling by a dimensionless factor (efficiencies, probabilities).
impl Mul<f64> for MicroSecs {
    type Output = MicroSecs;
    fn mul(self, rhs: f64) -> MicroSecs {
        MicroSecs(self.0 * rhs)
    }
}

/// Scaling from the left, so `(n - p) as f64 * m0` reads like Eq. (3).
impl Mul<MicroSecs> for f64 {
    type Output = MicroSecs;
    fn mul(self, rhs: MicroSecs) -> MicroSecs {
        MicroSecs(self * rhs.0)
    }
}

/// Dividing by a dimensionless factor.
impl Div<f64> for MicroSecs {
    type Output = MicroSecs;
    fn div(self, rhs: f64) -> MicroSecs {
        MicroSecs(self.0 / rhs)
    }
}

/// The ratio of two durations is dimensionless (relative errors, MFU).
impl Div<MicroSecs> for MicroSecs {
    type Output = f64;
    fn div(self, rhs: MicroSecs) -> f64 {
        self.0 / rhs.0
    }
}

/// Time × math rate = math amount — the budget side of an MFU figure.
impl Mul<FlopsPerSec> for MicroSecs {
    type Output = Flops;
    fn mul(self, rhs: FlopsPerSec) -> Flops {
        Flops(self.0 * 1e-6 * rhs.0)
    }
}

/// Time × transfer rate = data volume — how many bytes a bus can move in
/// a window (rounds down to whole bytes; negative windows clamp to zero).
impl Mul<BytesPerSec> for MicroSecs {
    type Output = Bytes;
    fn mul(self, rhs: BytesPerSec) -> Bytes {
        Bytes((self.0 * 1e-6 * rhs.0).max(0.0) as u64)
    }
}

impl Sum for MicroSecs {
    fn sum<I: Iterator<Item = MicroSecs>>(iter: I) -> MicroSecs {
        MicroSecs(iter.map(|t| t.0).sum())
    }
}

impl<'a> Sum<&'a MicroSecs> for MicroSecs {
    fn sum<I: Iterator<Item = &'a MicroSecs>>(iter: I) -> MicroSecs {
        MicroSecs(iter.map(|t| t.0).sum())
    }
}

impl fmt::Display for MicroSecs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.prec$}us", self.0)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

// ---------------------------------------------------------------------------
// Bytes
// ---------------------------------------------------------------------------

/// A memory footprint or message size in bytes.
///
/// Plain `+`/`-` are deliberately *not* implemented: memory accounting
/// must choose between the saturating and checked flavors so overflow and
/// underflow are explicit decisions, never silent wraparound (the stage
/// budget `capacity − static − buffer` underflows exactly when a stage is
/// infeasible, which callers must observe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// A footprint of `n` bytes.
    #[must_use]
    pub const fn new(n: u64) -> Self {
        Bytes(n)
    }

    /// `n` mebibytes (n × 2²⁰ bytes).
    #[must_use]
    pub const fn from_mib(n: u64) -> Self {
        Bytes(n << 20)
    }

    /// `n` gibibytes (n × 2³⁰ bytes).
    #[must_use]
    pub const fn from_gib(n: u64) -> Self {
        Bytes(n << 30)
    }

    /// The raw byte count.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The byte count as an `f64` (for ratios and display only).
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Sum that clamps at `u64::MAX` instead of wrapping.
    #[must_use]
    pub const fn saturating_add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_add(rhs.0))
    }

    /// Difference that clamps at zero instead of wrapping — the "how much
    /// budget is left" operation.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// Sum, or `None` on overflow.
    #[must_use]
    pub const fn checked_add(self, rhs: Bytes) -> Option<Bytes> {
        match self.0.checked_add(rhs.0) {
            Some(n) => Some(Bytes(n)),
            None => None,
        }
    }

    /// Difference, or `None` when `rhs` exceeds `self` — this is how the
    /// memory model reports an infeasible stage budget.
    #[must_use]
    pub const fn checked_sub(self, rhs: Bytes) -> Option<Bytes> {
        match self.0.checked_sub(rhs.0) {
            Some(n) => Some(Bytes(n)),
            None => None,
        }
    }

    /// Scales by a count (micro-batches, replicas), saturating.
    #[must_use]
    pub const fn saturating_mul(self, count: u64) -> Bytes {
        Bytes(self.0.saturating_mul(count))
    }

    /// The larger footprint.
    #[must_use]
    pub fn max(self, other: Bytes) -> Bytes {
        Bytes(self.0.max(other.0))
    }

    /// The smaller footprint.
    #[must_use]
    pub fn min(self, other: Bytes) -> Bytes {
        Bytes(self.0.min(other.0))
    }

    /// Whether this footprint fits within `capacity`.
    #[must_use]
    pub fn fits(self, capacity: Bytes) -> bool {
        self.0 <= capacity.0
    }
}

/// Scaling by a count (micro-batches, live activations). Panics on
/// overflow in debug builds like ordinary integer arithmetic.
impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}

/// Scaling from the left: `live * saved_bytes`.
impl Mul<Bytes> for u64 {
    type Output = Bytes;
    fn mul(self, rhs: Bytes) -> Bytes {
        Bytes(self * rhs.0)
    }
}

/// Even split across `rhs` parts (integer division, rounds down).
impl Div<u64> for Bytes {
    type Output = Bytes;
    fn div(self, rhs: u64) -> Bytes {
        Bytes(self.0 / rhs)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        Bytes(iter.map(|b| b.0).sum())
    }
}

impl<'a> Sum<&'a Bytes> for Bytes {
    fn sum<I: Iterator<Item = &'a Bytes>>(iter: I) -> Bytes {
        Bytes(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1 << 30 {
            write!(f, "{:.2} GiB", self.0 as f64 / (1u64 << 30) as f64)
        } else if self.0 >= 1 << 20 {
            write!(f, "{:.2} MiB", self.0 as f64 / (1u64 << 20) as f64)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

// ---------------------------------------------------------------------------
// Flops and rates
// ---------------------------------------------------------------------------

/// An amount of floating-point work (FLOPs — a count, not a rate).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[repr(transparent)]
pub struct Flops(f64);

impl Flops {
    /// Zero work.
    pub const ZERO: Flops = Flops(0.0);

    /// `n` floating-point operations. `f64` because unit FLOP counts
    /// (6·s·h² and friends) overflow nothing but are born fractional.
    #[must_use]
    pub const fn new(n: f64) -> Self {
        Flops(n)
    }

    /// The raw operation count.
    #[must_use]
    pub const fn get(self) -> f64 {
        self.0
    }
}

impl Add for Flops {
    type Output = Flops;
    fn add(self, rhs: Flops) -> Flops {
        Flops(self.0 + rhs.0)
    }
}

impl AddAssign for Flops {
    fn add_assign(&mut self, rhs: Flops) {
        self.0 += rhs.0;
    }
}

/// Scaling by a dimensionless factor (2× for the backward pass, etc.).
impl Mul<f64> for Flops {
    type Output = Flops;
    fn mul(self, rhs: f64) -> Flops {
        Flops(self.0 * rhs)
    }
}

/// Scaling from the left: `6.0 * params * tokens` style estimates.
impl Mul<Flops> for f64 {
    type Output = Flops;
    fn mul(self, rhs: Flops) -> Flops {
        Flops(self * rhs.0)
    }
}

/// Work / rate = time: the math leg of the roofline.
impl Div<FlopsPerSec> for Flops {
    type Output = MicroSecs;
    fn div(self, rhs: FlopsPerSec) -> MicroSecs {
        MicroSecs(self.0 / rhs.0 * 1e6)
    }
}

/// The ratio of two work amounts is dimensionless (MFU).
impl Div<Flops> for Flops {
    type Output = f64;
    fn div(self, rhs: Flops) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Flops {
    fn sum<I: Iterator<Item = Flops>>(iter: I) -> Flops {
        Flops(iter.map(|x| x.0).sum())
    }
}

impl fmt::Display for Flops {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} GFLOP", self.0 / 1e9)
    }
}

/// A math rate in FLOP/s (device peak or sustained).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[repr(transparent)]
pub struct FlopsPerSec(f64);

impl FlopsPerSec {
    /// A rate of `per_sec` FLOP/s.
    #[must_use]
    pub const fn new(per_sec: f64) -> Self {
        FlopsPerSec(per_sec)
    }

    /// The raw FLOP/s value.
    #[must_use]
    pub const fn get(self) -> f64 {
        self.0
    }
}

/// Derating by an efficiency fraction.
impl Mul<f64> for FlopsPerSec {
    type Output = FlopsPerSec;
    fn mul(self, rhs: f64) -> FlopsPerSec {
        FlopsPerSec(self.0 * rhs)
    }
}

/// Aggregating across devices: `devices as f64 * peak`.
impl Mul<FlopsPerSec> for f64 {
    type Output = FlopsPerSec;
    fn mul(self, rhs: FlopsPerSec) -> FlopsPerSec {
        FlopsPerSec(self * rhs.0)
    }
}

impl fmt::Display for FlopsPerSec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} TFLOP/s", self.0 / 1e12)
    }
}

/// A transfer rate in bytes/s (HBM, NVLink, InfiniBand…).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[repr(transparent)]
pub struct BytesPerSec(f64);

impl BytesPerSec {
    /// A rate of `per_sec` bytes/s.
    #[must_use]
    pub const fn new(per_sec: f64) -> Self {
        BytesPerSec(per_sec)
    }

    /// The raw bytes/s value.
    #[must_use]
    pub const fn get(self) -> f64 {
        self.0
    }
}

/// Derating by an efficiency fraction.
impl Mul<f64> for BytesPerSec {
    type Output = BytesPerSec;
    fn mul(self, rhs: f64) -> BytesPerSec {
        BytesPerSec(self.0 * rhs)
    }
}

/// Aggregating parallel links: `links as f64 * bw`.
impl Mul<BytesPerSec> for f64 {
    type Output = BytesPerSec;
    fn mul(self, rhs: BytesPerSec) -> BytesPerSec {
        BytesPerSec(self * rhs.0)
    }
}

/// Data / rate = time: the bandwidth leg of the roofline and every
/// communication estimate.
impl Div<BytesPerSec> for Bytes {
    type Output = MicroSecs;
    fn div(self, rhs: BytesPerSec) -> MicroSecs {
        MicroSecs(self.0 as f64 / rhs.0 * 1e6)
    }
}

impl fmt::Display for BytesPerSec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} GB/s", self.0 / 1e9)
    }
}

// ---------------------------------------------------------------------------
// Cost — totally ordered, NaN-free
// ---------------------------------------------------------------------------

/// A schedule cost: a duration with a *total* order, safe to use as a DP
/// objective or `BinaryHeap`/`sort` key.
///
/// `f64`'s `PartialOrd` poisons comparisons the moment a NaN sneaks in —
/// a DP that minimizes over NaN silently keeps the wrong branch. `Cost`
/// normalizes NaN to `+∞` at the constructor (the "infeasible" value, so
/// a corrupted candidate can never *win* a minimization) and implements
/// `Ord` via IEEE total ordering.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(transparent)]
pub struct Cost(f64);

impl Cost {
    /// The infeasible cost: worse than every finite cost.
    pub const INFINITE: Cost = Cost(f64::INFINITY);

    /// Zero cost.
    pub const ZERO: Cost = Cost(0.0);

    /// Wraps a duration, normalizing NaN to `+∞`.
    #[must_use]
    pub fn of(t: MicroSecs) -> Cost {
        if t.0.is_nan() {
            Cost(f64::INFINITY)
        } else {
            Cost(t.0)
        }
    }

    /// The underlying duration (`+∞` µs when infeasible).
    #[must_use]
    pub const fn time(self) -> MicroSecs {
        MicroSecs(self.0)
    }

    /// True for any cost other than [`Cost::INFINITE`].
    #[must_use]
    pub fn is_feasible(self) -> bool {
        self.0.is_finite()
    }
}

impl From<MicroSecs> for Cost {
    fn from(t: MicroSecs) -> Cost {
        Cost::of(t)
    }
}

impl Eq for Cost {}

impl PartialOrd for Cost {
    fn partial_cmp(&self, other: &Cost) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cost {
    fn cmp(&self, other: &Cost) -> Ordering {
        // NaN is impossible by construction; total_cmp keeps the
        // comparison total anyway (and orders -0.0 < +0.0 harmlessly).
        self.0.total_cmp(&other.0)
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost(self.0 + rhs.0)
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_finite() {
            write!(f, "{}us", self.0)
        } else {
            write!(f, "infeasible")
        }
    }
}

// ---------------------------------------------------------------------------
// Index newtypes
// ---------------------------------------------------------------------------

macro_rules! index_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        #[repr(transparent)]
        pub struct $name(usize);

        impl $name {
            /// Wraps a raw index. This and [`Self::get`] are the
            /// *designated conversion helpers* — the only sanctioned way
            /// in and out of this index space (`xtask lint`'s
            /// `index-confusion` rule polices ad-hoc mixing).
            #[must_use]
            pub const fn new(i: usize) -> Self {
                $name(i)
            }

            /// Unwraps to a raw `usize` for slice indexing.
            #[must_use]
            pub const fn get(self) -> usize {
                self.0
            }

            /// The next index in the same space.
            #[must_use]
            pub const fn next(self) -> Self {
                $name(self.0 + 1)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl From<usize> for $name {
            fn from(i: usize) -> Self {
                $name(i)
            }
        }
    };
}

index_type! {
    /// Position of a computation layer in the model's layer sequence
    /// (`0 ..= L`, the `i`/`j` of Algorithm 1's `f[s,i,j]`).
    LayerIdx
}

index_type! {
    /// Position of a pipeline stage (`0 .. p`, the `s` of the paper's
    /// per-stage recurrences). For interleaved schedules this is the
    /// *virtual* stage; the hosting device is `stage.get() % p`.
    StageIdx
}

index_type! {
    /// Position of a micro-batch within one training iteration
    /// (`0 .. n`).
    MicrobatchIdx
}

// ---------------------------------------------------------------------------
// Designated numeric conversions
// ---------------------------------------------------------------------------

/// The sanctioned numeric conversions for cost-carrying code.
///
/// Bare `as` casts silently truncate, wrap or lose precision, so `xtask
/// lint`'s `unchecked-cast` rule forbids them in the cost crates
/// (adapipe-recompute, adapipe-partition, adapipe-sim, adapipe-memory,
/// adapipe-check). Code there converts through these helpers — each one
/// documents the rounding/saturation contract it implements — or through
/// `try_from` when failure should be observable at the call site.
pub mod convert {
    /// A count (layers, stages, micro-batches, DP cells) as an `f64`
    /// scaling factor — the `(n − p)` of Eq. (3). Exact for every count
    /// below 2⁵³, which exceeds any quantity the planner enumerates.
    #[must_use]
    pub fn count_f64(n: usize) -> f64 {
        // Counts in this workspace are bounded by layer/stage/microbatch
        // limits far below 2^53, where u64→f64 is exact.
        u64_f64(usize_u64(n))
    }

    /// A `u64` magnitude (bytes, scale factors) as an `f64` for ratio and
    /// display math. Values above 2⁵³ round to the nearest representable
    /// float — acceptable for the statistics this feeds, never used to
    /// re-derive an integer.
    #[must_use]
    pub fn u64_f64(n: u64) -> f64 {
        // `as` is the only primitive for this conversion; the rounding
        // contract is documented above and this is the one sanctioned
        // spelling (see docs/static-analysis.md, unchecked-cast).
        #[allow(clippy::cast_precision_loss)]
        let x = n as f64;
        x
    }

    /// Widens a `usize` index or count to `u64`. Lossless on every
    /// supported target (usize ≤ 64 bits).
    #[must_use]
    pub fn usize_u64(n: usize) -> u64 {
        n as u64
    }

    /// Narrows a `u64` to `usize`, saturating at `usize::MAX` instead of
    /// wrapping — for sizing DP axes from byte quantities, where a
    /// saturated axis is still sound (it only over-allocates).
    #[must_use]
    pub fn u64_usize_saturating(n: u64) -> usize {
        usize::try_from(n).unwrap_or(usize::MAX)
    }

    /// Truncates a non-negative `f64` toward zero into a `u64`,
    /// clamping negatives to 0 and values beyond `u64::MAX` (or NaN) to
    /// `u64::MAX` — the byte-quantization rule for modeled capacities.
    #[must_use]
    pub fn f64_u64_clamped(x: f64) -> u64 {
        if x.is_nan() || x <= 0.0 {
            0
        } else if x >= u64_f64(u64::MAX) {
            u64::MAX
        } else {
            // In-range by the guards above; `as` truncates toward zero.
            x as u64
        }
    }

    /// Truncates an `f64` into a `usize` with the same clamping contract
    /// as [`f64_u64_clamped`] — for mapping continuous time/ratio axes
    /// onto discrete render or DP cells.
    #[must_use]
    pub fn f64_usize_clamped(x: f64) -> usize {
        u64_usize_saturating(f64_u64_clamped(x))
    }

    /// Reinterprets a `u64` magnitude as a signed delta, saturating at
    /// `i64::MAX` — for signed running-balance accounting (memory
    /// high-water tracking) fed by unsigned byte quantities.
    #[must_use]
    pub fn u64_i64_saturating(n: u64) -> i64 {
        i64::try_from(n).unwrap_or(i64::MAX)
    }

    /// Reads a signed running balance back as an unsigned magnitude,
    /// clamping negatives to 0 — a transient negative balance means
    /// "released more than acquired so far", which is zero held bytes.
    #[must_use]
    pub fn i64_u64_clamped(n: i64) -> u64 {
        u64::try_from(n).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn convert_helpers_honor_their_contracts() {
        assert_eq!(convert::count_f64(0), 0.0);
        assert_eq!(convert::count_f64(12), 12.0);
        assert_eq!(convert::u64_f64(1 << 53), 9_007_199_254_740_992.0);
        assert_eq!(convert::usize_u64(7), 7);
        assert_eq!(convert::u64_usize_saturating(42), 42);
        assert_eq!(convert::f64_u64_clamped(-1.5), 0);
        assert_eq!(convert::f64_u64_clamped(f64::NAN), 0);
        assert_eq!(convert::f64_u64_clamped(3.9), 3);
        assert_eq!(convert::f64_u64_clamped(f64::INFINITY), u64::MAX);
        assert_eq!(convert::f64_u64_clamped(2e19 * 10.0), u64::MAX);
        assert_eq!(convert::f64_usize_clamped(7.9), 7);
        assert_eq!(convert::f64_usize_clamped(-3.0), 0);
        assert_eq!(convert::u64_i64_saturating(5), 5);
        assert_eq!(convert::u64_i64_saturating(u64::MAX), i64::MAX);
        assert_eq!(convert::i64_u64_clamped(-9), 0);
        assert_eq!(convert::i64_u64_clamped(9), 9);
    }

    #[test]
    fn roofline_division_lands_in_microseconds() {
        // 312 TFLOP/s for 312 MFLOP of work = 1 µs.
        let t = Flops::new(312e6) / FlopsPerSec::new(312e12);
        assert!((t.as_micros() - 1.0).abs() < 1e-12, "{t}");
        // 2 TB/s moving 2 MB = 1 µs.
        let t = Bytes::new(2_000_000) / BytesPerSec::new(2e12);
        assert!((t.as_micros() - 1.0).abs() < 1e-12, "{t}");
    }

    #[test]
    fn seconds_round_trip() {
        let t = MicroSecs::from_secs(1.5e-3);
        assert!((t.as_micros() - 1500.0).abs() < 1e-9);
        assert!((t.as_secs() - 1.5e-3).abs() < 1e-15);
        assert!((MicroSecs::from_millis(2.0).as_micros() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn time_times_rate_is_work() {
        let budget = MicroSecs::from_secs(2.0) * FlopsPerSec::new(10.0);
        assert!((budget.get() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn bytes_arithmetic_is_explicit_about_underflow() {
        let cap = Bytes::from_gib(1);
        let used = Bytes::from_gib(2);
        assert_eq!(cap.saturating_sub(used), Bytes::ZERO);
        assert_eq!(cap.checked_sub(used), None);
        assert_eq!(used.checked_sub(cap), Some(Bytes::from_gib(1)));
        assert_eq!(Bytes::new(3) * 4, Bytes::new(12));
        assert_eq!(4 * Bytes::new(3), Bytes::new(12));
        assert_eq!(Bytes::new(10) / 3, Bytes::new(3));
        assert!(Bytes::from_mib(512).fits(cap));
        assert!(!used.fits(cap));
    }

    #[test]
    fn bytes_display_scales_units() {
        assert_eq!(Bytes::new(512).to_string(), "512 B");
        assert_eq!(Bytes::from_mib(3).to_string(), "3.00 MiB");
        assert_eq!(Bytes::from_gib(80).to_string(), "80.00 GiB");
    }

    #[test]
    fn cost_orders_nan_as_infeasible() {
        let good = Cost::of(MicroSecs::new(5.0));
        let nan = Cost::of(MicroSecs::new(f64::NAN));
        assert_eq!(nan, Cost::INFINITE);
        assert!(!nan.is_feasible());
        assert!(good < nan);
        let mut v = [nan, good, Cost::of(MicroSecs::new(1.0))];
        v.sort();
        assert_eq!(v[0].time().as_micros(), 1.0);
        assert_eq!(*v.last().unwrap(), Cost::INFINITE);
        assert_eq!(v.iter().min(), Some(&Cost::of(MicroSecs::new(1.0))));
    }

    #[test]
    fn invalid_cost_detection() {
        assert!(MicroSecs::new(-1.0).is_invalid_cost());
        assert!(MicroSecs::new(f64::NAN).is_invalid_cost());
        assert!(MicroSecs::new(f64::INFINITY).is_invalid_cost());
        assert!(!MicroSecs::new(0.0).is_invalid_cost());
        assert!(!MicroSecs::new(3.5).is_invalid_cost());
    }

    #[test]
    fn index_types_are_distinct_and_displayable() {
        let l = LayerIdx::new(7);
        assert_eq!(l.get(), 7);
        assert_eq!(l.next(), LayerIdx::new(8));
        assert_eq!(StageIdx::from(3).to_string(), "3");
        assert_eq!(MicrobatchIdx::new(0).get(), 0);
    }

    #[test]
    fn sums_accumulate() {
        let total: MicroSecs = [MicroSecs::new(1.0), MicroSecs::new(2.5)].into_iter().sum();
        assert!((total.as_micros() - 3.5).abs() < 1e-12);
        let bytes: Bytes = [Bytes::new(1), Bytes::new(2)].iter().sum();
        assert_eq!(bytes, Bytes::new(3));
        let work: Flops = [Flops::new(1.0), Flops::new(2.0)].into_iter().sum();
        assert!((work.get() - 3.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn saturating_sub_never_exceeds_lhs(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
            let d = Bytes::new(a).saturating_sub(Bytes::new(b));
            prop_assert!(d.get() <= a);
            if b <= a {
                prop_assert_eq!(d.get(), a - b);
            } else {
                prop_assert_eq!(d.get(), 0);
            }
        }

        #[test]
        fn cost_min_is_total(xs in proptest::collection::vec(-1e9f64..1e9, 1..20)) {
            let costs: Vec<Cost> = xs.iter().map(|&x| Cost::of(MicroSecs::new(x))).collect();
            let min = costs.iter().min().copied();
            prop_assert!(min.is_some());
            let m = min.unwrap();
            for c in &costs {
                prop_assert!(m <= *c);
            }
        }
    }
}
