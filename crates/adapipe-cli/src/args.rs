//! A small `--flag value` argument parser (no external dependencies).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Error produced while parsing command-line arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// A flag was given without a value.
    MissingValue(String),
    /// A positional argument appeared where a flag was expected.
    UnexpectedPositional(String),
    /// A flag appeared twice.
    Duplicate(String),
    /// A required flag is absent.
    Required(&'static str),
    /// A value failed to parse.
    Invalid {
        /// The flag in question.
        flag: String,
        /// The offending value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// An unknown flag for this subcommand.
    Unknown(String),
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::MissingValue(flag) => write!(f, "flag --{flag} needs a value"),
            ArgsError::UnexpectedPositional(arg) => write!(f, "unexpected argument `{arg}`"),
            ArgsError::Duplicate(flag) => write!(f, "flag --{flag} given twice"),
            ArgsError::Required(flag) => write!(f, "missing required flag --{flag}"),
            ArgsError::Invalid {
                flag,
                value,
                expected,
            } => {
                write!(f, "--{flag} {value}: expected {expected}")
            }
            ArgsError::Unknown(flag) => write!(f, "unknown flag --{flag}"),
        }
    }
}

impl Error for ArgsError {}

/// Parsed `--flag value` pairs with typed accessors that track which
/// flags were consumed (leftovers are reported as unknown).
#[derive(Debug, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
}

impl Args {
    /// Parses raw arguments (everything after the subcommand).
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] on positionals, duplicates or dangling
    /// flags.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgsError> {
        let mut values = BTreeMap::new();
        let mut iter = raw.into_iter();
        while let Some(arg) = iter.next() {
            let Some(flag) = arg.strip_prefix("--") else {
                return Err(ArgsError::UnexpectedPositional(arg));
            };
            let value = iter
                .next()
                .ok_or_else(|| ArgsError::MissingValue(flag.to_string()))?;
            if values.insert(flag.to_string(), value).is_some() {
                return Err(ArgsError::Duplicate(flag.to_string()));
            }
        }
        Ok(Args { values })
    }

    /// Consumes an optional string flag.
    pub fn take(&mut self, flag: &str) -> Option<String> {
        self.values.remove(flag)
    }

    /// Consumes a required string flag.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::Required`] if absent.
    pub fn require(&mut self, flag: &'static str) -> Result<String, ArgsError> {
        self.take(flag).ok_or(ArgsError::Required(flag))
    }

    /// Consumes an optional parsed flag.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::Invalid`] when the value does not parse.
    pub fn take_parsed<T: std::str::FromStr>(
        &mut self,
        flag: &str,
        expected: &'static str,
    ) -> Result<Option<T>, ArgsError> {
        match self.take(flag) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| ArgsError::Invalid {
                flag: flag.to_string(),
                value: v,
                expected,
            }),
        }
    }

    /// Consumes a required parsed flag.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::Required`] or [`ArgsError::Invalid`].
    pub fn require_parsed<T: std::str::FromStr>(
        &mut self,
        flag: &'static str,
        expected: &'static str,
    ) -> Result<T, ArgsError> {
        self.take_parsed(flag, expected)?
            .ok_or(ArgsError::Required(flag))
    }

    /// Fails if any flags were left unconsumed.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::Unknown`] naming the first leftover.
    pub fn finish(self) -> Result<(), ArgsError> {
        match self.values.into_iter().next() {
            None => Ok(()),
            Some((flag, _)) => Err(ArgsError::Unknown(flag)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, ArgsError> {
        Args::parse(args.iter().map(ToString::to_string))
    }

    #[test]
    fn parses_flag_value_pairs() {
        let mut a = parse(&["--model", "gpt3", "--seq", "4096"]).unwrap();
        assert_eq!(a.require("model").unwrap(), "gpt3");
        assert_eq!(a.require_parsed::<usize>("seq", "int").unwrap(), 4096);
        a.finish().unwrap();
    }

    #[test]
    fn rejects_positionals_and_duplicates() {
        assert!(matches!(
            parse(&["gpt3"]),
            Err(ArgsError::UnexpectedPositional(_))
        ));
        assert!(matches!(
            parse(&["--m", "1", "--m", "2"]),
            Err(ArgsError::Duplicate(_))
        ));
        assert!(matches!(parse(&["--m"]), Err(ArgsError::MissingValue(_))));
    }

    #[test]
    fn reports_missing_invalid_and_unknown() {
        let mut a = parse(&["--seq", "abc", "--junk", "1"]).unwrap();
        assert!(matches!(
            a.require("model"),
            Err(ArgsError::Required("model"))
        ));
        assert!(matches!(
            a.require_parsed::<usize>("seq", "a positive integer"),
            Err(ArgsError::Invalid { .. })
        ));
        assert!(matches!(a.finish(), Err(ArgsError::Unknown(f)) if f == "junk"));
    }

    #[test]
    fn errors_render_helpfully() {
        let e = ArgsError::Invalid {
            flag: "seq".into(),
            value: "x".into(),
            expected: "an int",
        };
        assert_eq!(e.to_string(), "--seq x: expected an int");
    }
}
