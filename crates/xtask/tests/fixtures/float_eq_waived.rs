pub fn same(a: f64) -> bool {
    // lint: allow(float-eq): comparing against an exact sentinel
    a == 0.5
}
