//! `adapipe report` rendering: one self-contained HTML file with
//! inline SVG charts and **no JavaScript**, so the artifact can be
//! archived in CI, attached to an issue, or opened from `file://`
//! years later without a toolchain.
//!
//! Input is the machine-readable artifacts the rest of the workspace
//! already emits, classified by shape (see [`classify`]):
//!
//! * `adapipe-obs/v1` metrics reports (`/metrics`, `--metrics-out`,
//!   `BENCH_*.json` from the figure regenerators) — serve latency
//!   histograms and the planner phase breakdown;
//! * Chrome Trace Event Format span dumps (`--chrome-trace`,
//!   `GET /v1/trace/{id}`) — the schedule timeline;
//! * Criterion-shim bench summaries — mean-latency bars;
//! * `adapipe-flight/v1` flight-recorder dumps — incident event tables.

use adapipe_obs::json::Value;
use std::fmt::Write as _;

/// One classified input artifact.
pub enum Artifact {
    /// `adapipe-obs/v1` metrics report.
    Metrics { name: String, doc: Value },
    /// Criterion-shim bench summary (`{"results": [...]}`).
    Bench { name: String, doc: Value },
    /// Chrome Trace Event Format array.
    Trace { name: String, doc: Value },
    /// `adapipe-flight/v1` flight-recorder dump.
    Flight { name: String, doc: Value },
}

impl Artifact {
    fn kind(&self) -> &'static str {
        match self {
            Artifact::Metrics { .. } => "metrics",
            Artifact::Bench { .. } => "bench",
            Artifact::Trace { .. } => "trace",
            Artifact::Flight { .. } => "flight",
        }
    }
}

/// Classifies a parsed JSON artifact by its shape; `None` means the
/// document is none of the four known schemas.
pub fn classify(name: &str, doc: Value) -> Option<Artifact> {
    let name = name.to_string();
    match &doc {
        Value::Array(_) => Some(Artifact::Trace { name, doc }),
        Value::Object(_) => {
            if doc.get("schema").and_then(Value::as_str) == Some("adapipe-flight/v1") {
                Some(Artifact::Flight { name, doc })
            } else if doc.get("counters").is_some() || doc.get("histograms").is_some() {
                Some(Artifact::Metrics { name, doc })
            } else if doc.get("results").is_some() {
                Some(Artifact::Bench { name, doc })
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Renders the full report document.
pub fn render(title: &str, artifacts: &[Artifact]) -> String {
    let mut body = String::new();
    let _ = write!(
        body,
        "<h1>{}</h1>\n<p class=\"meta\">{} artifact(s): {}</p>\n",
        esc(title),
        artifacts.len(),
        esc(&artifacts
            .iter()
            .map(|a| format!("{} ({})", artifact_name(a), a.kind()))
            .collect::<Vec<_>>()
            .join(", "))
    );
    body.push_str(&histogram_section(artifacts));
    body.push_str(&optimality_section(artifacts));
    body.push_str(&phase_section(artifacts));
    body.push_str(&timeline_section(artifacts));
    body.push_str(&bench_section(artifacts));
    body.push_str(&flight_section(artifacts));
    format!(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>{}</title>\n<style>{STYLE}</style>\n</head>\n<body>\n{body}</body>\n</html>\n",
        esc(title)
    )
}

const STYLE: &str = "\
body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:64rem;color:#1a1a2e}\
h1{border-bottom:2px solid #1a1a2e}h2{margin-top:2rem}\
.meta{color:#667}table{border-collapse:collapse;width:100%}\
td,th{border:1px solid #ccd;padding:2px 8px;text-align:left;font-size:13px}\
th{background:#eef}svg{display:block;margin:.5rem 0}\
.empty{color:#889;font-style:italic}";

fn artifact_name(a: &Artifact) -> &str {
    match a {
        Artifact::Metrics { name, .. }
        | Artifact::Bench { name, .. }
        | Artifact::Trace { name, .. }
        | Artifact::Flight { name, .. } => name,
    }
}

/// Serve/planner latency histograms: one quantile bar group per
/// histogram key found in any metrics artifact.
fn histogram_section(artifacts: &[Artifact]) -> String {
    let mut rows: Vec<(String, Vec<(String, f64)>)> = Vec::new();
    for a in artifacts {
        let Artifact::Metrics { name, doc } = a else {
            continue;
        };
        let Some(Value::Object(hists)) = doc.get("histograms") else {
            continue;
        };
        for (key, h) in hists {
            let mut bars = Vec::new();
            for q in ["p50", "p95", "p99", "max"] {
                if let Some(v) = h.get(q).and_then(Value::as_f64) {
                    bars.push((q.to_string(), v));
                }
            }
            let count = h.get("count").and_then(Value::as_f64).unwrap_or(0.0);
            if !bars.is_empty() {
                rows.push((format!("{key} (n={count}, {name})"), bars));
            }
        }
    }
    let mut out = String::from("<h2>Latency histograms</h2>\n");
    if rows.is_empty() {
        out.push_str("<p class=\"empty\">no histograms in the collected metrics</p>\n");
        return out;
    }
    for (title, bars) in rows {
        let _ = write!(out, "<h3>{}</h3>\n{}", esc(&title), svg_hbars(&bars));
    }
    out
}

/// Optimality verification: oracle agreement and certificate counters
/// from any metrics artifact that ran `verify --optimality` (or the
/// `ext_oracle` bench). Disagreements and certificate failures mean the
/// planner left its proven envelope, so they get a visible verdict row
/// instead of hiding among generic counters.
fn optimality_section(artifacts: &[Artifact]) -> String {
    use adapipe_obs::keys;
    let mut out = String::from("<h2>Optimality verification</h2>\n");
    let mut any = false;
    for a in artifacts {
        let Artifact::Metrics { name, doc } = a else {
            continue;
        };
        let counter = |key: &str| -> f64 {
            doc.get("counters")
                .and_then(|c| c.get(key))
                .and_then(Value::as_f64)
                .unwrap_or(0.0)
        };
        let instances = counter(keys::ORACLE_INSTANCES);
        let checks = counter(keys::CERT_CHECKS);
        if instances == 0.0 && checks == 0.0 {
            continue;
        }
        any = true;
        let disagreements = counter(keys::ORACLE_DISAGREEMENTS);
        let failures = counter(keys::CERT_FAILURES);
        let verdict = if disagreements == 0.0 && failures == 0.0 {
            "all oracle instances agree; every certificate holds"
        } else {
            "DISAGREEMENT — the planner left its proven envelope"
        };
        let gap = doc
            .get("histograms")
            .and_then(|h| h.get(keys::CERT_GAP_PCT))
            .and_then(|h| h.get("max"))
            .and_then(Value::as_f64);
        let _ = write!(
            out,
            "<h3>{}</h3>\n<table>\
             <tr><th>oracle instances</th><th>disagreements</th>\
             <th>certificate checks</th><th>failures</th>\
             <th>worst certificate gap</th></tr>\
             <tr><td>{instances}</td><td>{disagreements}</td>\
             <td>{checks}</td><td>{failures}</td><td>{}</td></tr>\
             </table>\n<p>{}</p>\n",
            esc(name),
            gap.map_or_else(|| "-".to_string(), |g| format!("{g:.2}%")),
            esc(verdict)
        );
    }
    if !any {
        out.push_str("<p class=\"empty\">no optimality runs in the collected metrics</p>\n");
    }
    out
}

/// Planner phase breakdown: total span time per phase, from the
/// `spans` aggregation of each metrics artifact.
fn phase_section(artifacts: &[Artifact]) -> String {
    let mut out = String::from("<h2>Planner phase breakdown</h2>\n");
    let mut any = false;
    for a in artifacts {
        let Artifact::Metrics { name, doc } = a else {
            continue;
        };
        let Some(Value::Object(spans)) = doc.get("spans") else {
            continue;
        };
        let mut rows: Vec<(String, f64)> = spans
            .iter()
            .filter_map(|(k, v)| {
                let total = v.get("total_us").and_then(Value::as_f64)?;
                let count = v.get("count").and_then(Value::as_f64).unwrap_or(0.0);
                Some((format!("{k} (x{count})"), total))
            })
            .collect();
        if rows.is_empty() {
            continue;
        }
        any = true;
        rows.sort_by(|a, b| b.1.total_cmp(&a.1));
        let _ = write!(
            out,
            "<h3>{} — total span time (µs)</h3>\n{}",
            esc(name),
            svg_hbars(&rows)
        );
    }
    if !any {
        out.push_str("<p class=\"empty\">no span aggregates in the collected metrics</p>\n");
    }
    out
}

/// Schedule timeline: one Gantt lane per tid, from Chrome-trace
/// complete events.
fn timeline_section(artifacts: &[Artifact]) -> String {
    let mut out = String::from("<h2>Schedule timeline</h2>\n");
    let mut any = false;
    for a in artifacts {
        let Artifact::Trace { name, doc } = a else {
            continue;
        };
        let Some(events) = doc.as_array() else {
            continue;
        };
        let spans: Vec<(String, String, f64, f64, f64)> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .filter_map(|e| {
                Some((
                    e.get("name").and_then(Value::as_str)?.to_string(),
                    e.get("cat")
                        .and_then(Value::as_str)
                        .unwrap_or("")
                        .to_string(),
                    e.get("ts").and_then(Value::as_f64)?,
                    e.get("dur").and_then(Value::as_f64)?,
                    e.get("tid").and_then(Value::as_f64).unwrap_or(0.0),
                ))
            })
            .collect();
        if spans.is_empty() {
            continue;
        }
        any = true;
        let _ = write!(out, "<h3>{}</h3>\n{}", esc(name), svg_timeline(&spans));
    }
    if !any {
        out.push_str("<p class=\"empty\">no Chrome-trace artifacts collected</p>\n");
    }
    out
}

/// Criterion-shim results: mean latency per bench id.
fn bench_section(artifacts: &[Artifact]) -> String {
    let mut out = String::from("<h2>Bench results</h2>\n");
    let mut any = false;
    for a in artifacts {
        let Artifact::Bench { name, doc } = a else {
            continue;
        };
        let Some(results) = doc.get("results").and_then(Value::as_array) else {
            continue;
        };
        let rows: Vec<(String, f64)> = results
            .iter()
            .filter_map(|r| {
                Some((
                    r.get("id").and_then(Value::as_str)?.to_string(),
                    r.get("mean_ns").and_then(Value::as_f64)?,
                ))
            })
            .collect();
        if rows.is_empty() {
            continue;
        }
        any = true;
        let commit = doc.get("commit").and_then(Value::as_str).unwrap_or("?");
        let config = doc.get("config").and_then(Value::as_str).unwrap_or("?");
        let _ = write!(
            out,
            "<h3>{} — mean ns (commit {}, config {})</h3>\n{}",
            esc(name),
            esc(commit),
            esc(config),
            svg_hbars(&rows)
        );
    }
    if !any {
        out.push_str("<p class=\"empty\">no bench summaries collected</p>\n");
    }
    out
}

/// Flight-recorder dumps: the incident events, verbatim.
fn flight_section(artifacts: &[Artifact]) -> String {
    let mut out = String::from("<h2>Flight-recorder incidents</h2>\n");
    let mut any = false;
    for a in artifacts {
        let Artifact::Flight { name, doc } = a else {
            continue;
        };
        any = true;
        let reason = doc.get("reason").and_then(Value::as_str).unwrap_or("?");
        let dropped = doc.get("dropped").and_then(Value::as_f64).unwrap_or(0.0);
        let _ = write!(
            out,
            "<h3>{} — reason {}, {} event(s) dropped</h3>\n\
             <table><tr><th>t (µs)</th><th>kind</th><th>detail</th><th>trace</th></tr>\n",
            esc(name),
            esc(reason),
            dropped
        );
        for ev in doc
            .get("events")
            .and_then(Value::as_array)
            .unwrap_or(&[])
            .iter()
        {
            let _ = writeln!(
                out,
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                ev.get("t_us").and_then(Value::as_f64).unwrap_or(0.0),
                esc(ev.get("kind").and_then(Value::as_str).unwrap_or("")),
                esc(ev.get("detail").and_then(Value::as_str).unwrap_or("")),
                esc(ev.get("trace_id").and_then(Value::as_str).unwrap_or("—")),
            );
        }
        out.push_str("</table>\n");
    }
    if !any {
        out.push_str("<p class=\"empty\">no flight dumps collected — no incidents</p>\n");
    }
    out
}

/// A horizontal bar chart: label gutter on the left, bars scaled to
/// the maximum value, value printed after each bar.
fn svg_hbars(rows: &[(String, f64)]) -> String {
    const W: f64 = 840.0;
    const GUTTER: f64 = 300.0;
    const BAR_H: f64 = 16.0;
    const GAP: f64 = 6.0;
    let max = rows.iter().map(|(_, v)| *v).fold(0.0_f64, f64::max);
    let height = rows.len() as f64 * (BAR_H + GAP) + GAP;
    let mut out = format!(
        "<svg viewBox=\"0 0 {W} {height}\" width=\"{W}\" height=\"{height}\" \
         xmlns=\"http://www.w3.org/2000/svg\">\n"
    );
    for (i, (label, value)) in rows.iter().enumerate() {
        let y = GAP + i as f64 * (BAR_H + GAP);
        let w = if max > 0.0 {
            (value / max) * (W - GUTTER - 120.0)
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "<text x=\"{}\" y=\"{}\" text-anchor=\"end\" font-size=\"12\">{}</text>\
             <rect x=\"{GUTTER}\" y=\"{y}\" width=\"{}\" height=\"{BAR_H}\" fill=\"{}\"/>\
             <text x=\"{}\" y=\"{}\" font-size=\"11\" fill=\"#445\">{}</text>",
            GUTTER - 8.0,
            y + BAR_H - 4.0,
            esc(label),
            w.max(1.0),
            color_for(label),
            GUTTER + w.max(1.0) + 6.0,
            y + BAR_H - 4.0,
            fmt_num(*value),
        );
    }
    out.push_str("</svg>\n");
    out
}

/// A Gantt timeline: one lane per tid, boxes at their span interval,
/// colored by span name.
fn svg_timeline(spans: &[(String, String, f64, f64, f64)]) -> String {
    const W: f64 = 840.0;
    const GUTTER: f64 = 70.0;
    const LANE_H: f64 = 22.0;
    let t0 = spans.iter().map(|s| s.2).fold(f64::INFINITY, f64::min);
    let t1 = spans
        .iter()
        .map(|s| s.2 + s.3)
        .fold(f64::NEG_INFINITY, f64::max);
    let range = (t1 - t0).max(1e-9);
    let mut tids: Vec<u64> = spans.iter().map(|s| s.4 as u64).collect();
    tids.sort_unstable();
    tids.dedup();
    let lane_of = |tid: f64| tids.iter().position(|t| *t == tid as u64).unwrap_or(0);
    let height = tids.len() as f64 * LANE_H + 24.0;
    let mut out = format!(
        "<svg viewBox=\"0 0 {W} {height}\" width=\"{W}\" height=\"{height}\" \
         xmlns=\"http://www.w3.org/2000/svg\">\n"
    );
    for (i, tid) in tids.iter().enumerate() {
        let y = i as f64 * LANE_H;
        let _ = writeln!(
            out,
            "<text x=\"4\" y=\"{}\" font-size=\"11\" fill=\"#445\">tid {tid}</text>\
             <line x1=\"{GUTTER}\" y1=\"{}\" x2=\"{W}\" y2=\"{}\" stroke=\"#dde\"/>",
            y + LANE_H - 7.0,
            y + LANE_H,
            y + LANE_H,
        );
    }
    for (name, _cat, ts, dur, tid) in spans {
        let x = GUTTER + (ts - t0) / range * (W - GUTTER - 4.0);
        let w = (dur / range * (W - GUTTER - 4.0)).max(1.5);
        let y = lane_of(*tid) as f64 * LANE_H + 3.0;
        let _ = writeln!(
            out,
            "<rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{}\" fill=\"{}\">\
             <title>{} [{} µs, dur {} µs]</title></rect>",
            LANE_H - 6.0,
            color_for(name),
            esc(name),
            fmt_num(*ts),
            fmt_num(*dur),
        );
    }
    let _ = write!(
        out,
        "<text x=\"{GUTTER}\" y=\"{}\" font-size=\"11\" fill=\"#445\">0</text>\
         <text x=\"{W}\" y=\"{}\" text-anchor=\"end\" font-size=\"11\" fill=\"#445\">\
         {} µs</text>\n</svg>\n",
        height - 6.0,
        height - 6.0,
        fmt_num(range),
    );
    out
}

/// A stable color per label (hash into a fixed palette) so the same
/// phase gets the same color across charts.
fn color_for(label: &str) -> &'static str {
    const PALETTE: &[&str] = &[
        "#4c72b0", "#dd8452", "#55a868", "#c44e52", "#8172b3", "#937860", "#da8bc3", "#8c8c8c",
        "#ccb974", "#64b5cd",
    ];
    let h: usize = label.bytes().map(usize::from).sum();
    PALETTE[h % PALETTE.len()]
}

fn fmt_num(v: f64) -> String {
    if v.fract().abs() < 1e-9 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

/// Minimal HTML escaping for text nodes and attribute values.
fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapipe_obs::json;

    fn doc(text: &str) -> Value {
        json::parse(text).expect("test JSON parses")
    }

    #[test]
    fn classify_recognizes_all_four_schemas() {
        let cases = [
            (r#"{"schema": "adapipe-obs/v1", "counters": {}}"#, "metrics"),
            (r#"{"bench": "x", "results": []}"#, "bench"),
            (r#"[{"ph": "M"}]"#, "trace"),
            (r#"{"schema": "adapipe-flight/v1", "events": []}"#, "flight"),
        ];
        for (text, kind) in cases {
            let a = classify("f.json", doc(text)).expect("classified");
            assert_eq!(a.kind(), kind, "{text}");
        }
        assert!(classify("f.json", doc("{\"other\": 1}")).is_none());
        assert!(classify("f.json", doc("42")).is_none());
    }

    #[test]
    fn render_is_self_contained_and_js_free() {
        let artifacts = vec![
            classify(
                "m.json",
                doc(r#"{"schema": "adapipe-obs/v1", "counters": {"a": 1},
                        "histograms": {"serve.request.us":
                          {"count": 9, "sum": 90, "p50": 8, "p95": 19, "p99": 20, "max": 21}},
                        "spans": {"plan": {"count": 2, "total_us": 100.5}}}"#),
            )
            .expect("metrics"),
            classify(
                "t.json",
                doc(r#"[{"name": "process_name", "ph": "M", "pid": 0, "tid": 0},
                        {"name": "plan", "cat": "planner", "ph": "X",
                         "ts": 0, "dur": 50, "pid": 0, "tid": 1}]"#),
            )
            .expect("trace"),
        ];
        let html = render("test report", &artifacts);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<svg"), "has inline SVG");
        assert!(html.contains("serve.request.us"));
        assert!(html.contains("plan (x2)"));
        assert!(html.contains("tid 1"));
        assert!(!html.contains("<script"), "no JavaScript");
        assert!(
            !html.contains("<link") && !html.contains("<img"),
            "no external fetches"
        );
    }

    #[test]
    fn optimality_runs_get_a_verdict_table() {
        let clean = classify(
            "ok.json",
            doc(r#"{"schema": "adapipe-obs/v1",
                    "counters": {"oracle.instances": 1350,
                                 "certificate.checks": 1},
                    "histograms": {"certificate.gap.pct":
                      {"count": 1, "sum": 10.4, "p50": 10.4, "p95": 10.4,
                       "p99": 10.4, "max": 10.4}}}"#),
        )
        .expect("metrics");
        let html = render("optimality", &[clean]);
        assert!(html.contains("Optimality verification"));
        assert!(html.contains("1350"));
        assert!(html.contains("10.40%"));
        assert!(html.contains("every certificate holds"));

        let broken = classify(
            "bad.json",
            doc(r#"{"schema": "adapipe-obs/v1",
                    "counters": {"oracle.instances": 8,
                                 "oracle.disagreements": 1}}"#),
        )
        .expect("metrics");
        let html = render("optimality", &[broken]);
        assert!(html.contains("DISAGREEMENT"));
    }

    #[test]
    fn html_escapes_hostile_labels() {
        let html = render("<script>alert(1)</script>", &[]);
        assert!(!html.contains("<script>alert"));
        assert!(html.contains("&lt;script&gt;"));
    }

    #[test]
    fn empty_sections_say_so() {
        let html = render("empty", &[]);
        for hint in [
            "no histograms",
            "no optimality runs",
            "no span aggregates",
            "no Chrome-trace",
            "no bench summaries",
            "no flight dumps",
        ] {
            assert!(html.contains(hint), "{hint}");
        }
    }
}
