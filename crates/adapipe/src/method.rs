use serde::{Deserialize, Serialize};
use std::fmt;

/// A planning method: AdaPipe, its ablation, or one of the paper's
/// baselines (§7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Method {
    /// Full AdaPipe: adaptive recomputation + adaptive partitioning.
    AdaPipe,
    /// Adaptive recomputation with even (baseline) partitioning — the
    /// paper's *Even Partitioning* ablation.
    EvenPartitioning,
    /// DAPPLE (1F1B) with full recomputation.
    DappleFull,
    /// DAPPLE (1F1B) with no recomputation.
    DappleNone,
    /// Chimera bidirectional pipelines, full recomputation.
    ChimeraFull,
    /// Chimera bidirectional pipelines, no recomputation.
    ChimeraNone,
    /// Chimera with forward doubling, full recomputation.
    ChimeraDFull,
    /// Chimera with forward doubling, no recomputation.
    ChimeraDNone,
    /// GPipe (all-forward-then-all-backward), full recomputation.
    GpipeFull,
    /// GPipe, no recomputation.
    GpipeNone,
    /// DAPPLE (1F1B) with Megatron-style *selective* recomputation:
    /// only the attention core is recomputed (§2.2 notes FlashAttention
    /// supersedes it; included as an extension baseline).
    DappleSelective,
    /// Megatron-style interleaved 1F1B with two model chunks per device,
    /// full recomputation (extension; §2.1 discusses the mechanism).
    InterleavedFull,
    /// Interleaved 1F1B (two chunks per device), no recomputation.
    InterleavedNone,
}

impl Method {
    /// Every method, in the order the paper's figures list them (the
    /// interleaved extension last).
    #[must_use]
    pub fn all() -> [Method; 13] {
        [
            Method::DappleFull,
            Method::DappleNone,
            Method::DappleSelective,
            Method::ChimeraFull,
            Method::ChimeraNone,
            Method::ChimeraDFull,
            Method::ChimeraDNone,
            Method::GpipeFull,
            Method::GpipeNone,
            Method::InterleavedFull,
            Method::InterleavedNone,
            Method::EvenPartitioning,
            Method::AdaPipe,
        ]
    }

    /// Number of model chunks each device hosts (Megatron's `v`); 1 for
    /// everything except the interleaved methods.
    #[must_use]
    pub fn virtual_chunks(self) -> usize {
        match self {
            Method::InterleavedFull | Method::InterleavedNone => 2,
            _ => 1,
        }
    }

    /// The methods shown in Figures 5 and 6 (cluster A).
    #[must_use]
    pub fn figure5() -> [Method; 8] {
        [
            Method::DappleFull,
            Method::DappleNone,
            Method::ChimeraFull,
            Method::ChimeraNone,
            Method::ChimeraDFull,
            Method::ChimeraDNone,
            Method::EvenPartitioning,
            Method::AdaPipe,
        ]
    }

    /// Whether the method schedules two bidirectional pipelines
    /// (parameters replicated per device).
    #[must_use]
    pub fn is_chimera(self) -> bool {
        matches!(
            self,
            Method::ChimeraFull | Method::ChimeraNone | Method::ChimeraDFull | Method::ChimeraDNone
        )
    }

    /// Whether the method searches recomputation adaptively (AdaPipe and
    /// Even Partitioning) rather than using full/no recomputation.
    #[must_use]
    pub fn is_adaptive(self) -> bool {
        matches!(self, Method::AdaPipe | Method::EvenPartitioning)
    }

    /// Live micro-batch count of (virtual) stage `stage` under this
    /// method's schedule — the multiplier on per-micro-batch saved bytes
    /// in Eq. (2): `p − s` for 1F1B (§2.1), all `n` for GPipe,
    /// `vp − s` for the interleaved virtual-stage law, and the analytic
    /// worst case `p/2 + 1` for Chimera's bidirectional residency.
    ///
    /// Used by both the planner (to budget plans) and the verifier (to
    /// re-derive the budget a plan claims); keeping them on one code
    /// path is what makes the memory-accounting check exact.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range for
    /// `pipeline · virtual_chunks()`.
    #[must_use]
    pub fn live_microbatches(self, pipeline: usize, stage: usize, n: usize) -> usize {
        let vp = pipeline * self.virtual_chunks();
        assert!(stage < vp, "stage {stage} out of range for vp={vp}");
        match self {
            Method::GpipeFull | Method::GpipeNone => n,
            // Virtual-stage residency: a vp-deep 1F1B law.
            Method::InterleavedFull | Method::InterleavedNone => vp - stage,
            m if m.is_chimera() => pipeline / 2 + 1,
            _ => adapipe_memory::f1b_live_microbatches(pipeline, stage),
        }
    }

    /// Whether the method saves every intermediate (the `-Non` variants).
    #[must_use]
    pub fn saves_everything(self) -> bool {
        matches!(
            self,
            Method::DappleNone
                | Method::ChimeraNone
                | Method::ChimeraDNone
                | Method::GpipeNone
                | Method::InterleavedNone
        )
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `pad` (not `write_str`) so callers' width/alignment apply.
        f.pad(match self {
            Method::AdaPipe => "AdaPipe",
            Method::EvenPartitioning => "Even Partitioning",
            Method::DappleFull => "DAPPLE-Full",
            Method::DappleNone => "DAPPLE-Non",
            Method::ChimeraFull => "Chimera-Full",
            Method::ChimeraNone => "Chimera-Non",
            Method::ChimeraDFull => "ChimeraD-Full",
            Method::ChimeraDNone => "ChimeraD-Non",
            Method::GpipeFull => "GPipe-Full",
            Method::GpipeNone => "GPipe-Non",
            Method::DappleSelective => "DAPPLE-Selective",
            Method::InterleavedFull => "Interleaved-Full",
            Method::InterleavedNone => "Interleaved-Non",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifications_are_consistent() {
        for m in Method::all() {
            if m.is_adaptive() {
                assert!(!m.saves_everything());
                assert!(!m.is_chimera());
            }
        }
        assert!(Method::ChimeraDNone.is_chimera());
        assert!(Method::ChimeraDNone.saves_everything());
    }

    #[test]
    fn virtual_chunks_only_for_interleaved() {
        for m in Method::all() {
            let v = m.virtual_chunks();
            if matches!(m, Method::InterleavedFull | Method::InterleavedNone) {
                assert_eq!(v, 2, "{m}");
            } else {
                assert_eq!(v, 1, "{m}");
            }
        }
    }

    #[test]
    fn selective_is_a_plain_1f1b_baseline() {
        let m = Method::DappleSelective;
        assert!(!m.is_chimera());
        assert!(!m.is_adaptive());
        assert!(!m.saves_everything());
        assert_eq!(m.to_string(), "DAPPLE-Selective");
    }

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(Method::DappleFull.to_string(), "DAPPLE-Full");
        assert_eq!(Method::ChimeraDNone.to_string(), "ChimeraD-Non");
        assert_eq!(Method::EvenPartitioning.to_string(), "Even Partitioning");
    }

    #[test]
    fn figure5_subset_of_all() {
        let all = Method::all();
        for m in Method::figure5() {
            assert!(all.contains(&m));
        }
    }
}
