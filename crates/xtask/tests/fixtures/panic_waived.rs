pub fn run(flag: bool) {
    if flag {
        // lint: allow(panic): unreachable by construction
        panic!("boom");
    }
}
