//! In-process integration tests: a real `Server` on a loopback port,
//! driven through the bundled HTTP client.

use adapipe_obs::{json, keys, Recorder};
use adapipe_serve::{client, PlanRequest, ServeConfig, Server, REQUEST_HEADER};
use adapipe_units::MicroSecs;
use std::time::Duration;

fn gpt2_request() -> PlanRequest {
    PlanRequest {
        model: "gpt2".to_string(),
        cluster: "a".to_string(),
        nodes: 1,
        ..PlanRequest::new(2, 4, 512, 16)
    }
}

fn start(cfg: ServeConfig) -> (Server, String) {
    let server = Server::bind(cfg, Recorder::new()).expect("bind on a free port");
    let addr = server.addr().to_string();
    (server, addr)
}

fn quick_server() -> (Server, String) {
    start(ServeConfig {
        port: 0,
        workers: 2,
        ..ServeConfig::default()
    })
}

#[test]
fn healthz_reports_ok() {
    let (server, addr) = quick_server();
    let resp = client::get(&addr, "/healthz").unwrap();
    assert_eq!((resp.status, resp.body.as_str()), (200, "ok\n"));
    server.shutdown_and_join();
}

#[test]
fn unknown_paths_and_methods_are_rejected() {
    let (server, addr) = quick_server();
    assert_eq!(client::get(&addr, "/nope").unwrap().status, 404);
    assert_eq!(
        client::request(&addr, "POST", "/healthz", None)
            .unwrap()
            .status,
        404
    );
    assert_eq!(
        client::request(&addr, "DELETE", "/healthz", None)
            .unwrap()
            .status,
        405
    );
    server.shutdown_and_join();
}

#[test]
fn cold_plan_then_cache_hit_is_byte_identical() {
    let (server, addr) = quick_server();
    let body = gpt2_request().to_wire_text();

    let cold = client::post_plan(&addr, &body).unwrap();
    assert_eq!(cold.status, 200, "{}", cold.body);
    assert_eq!(cold.header("x-adapipe-cache"), Some("miss"));
    let digest = cold.header("x-adapipe-digest").unwrap().to_string();
    assert_eq!(digest, gpt2_request().digest());
    assert!(cold.body.starts_with("adapipe-plan v2"), "{}", cold.body);

    let hit = client::post_plan(&addr, &body).unwrap();
    assert_eq!(hit.status, 200);
    assert_eq!(hit.header("x-adapipe-cache"), Some("hit"));
    assert_eq!(hit.body, cold.body, "cache hit must be byte-identical");

    // The content address also resolves over GET.
    let by_digest = client::get(&addr, &format!("/v1/plan/{digest}")).unwrap();
    assert_eq!(by_digest.status, 200);
    assert_eq!(by_digest.body, cold.body);

    let missing = client::get(&addr, "/v1/plan/deadbeef").unwrap();
    assert_eq!(missing.status, 404);

    let summary = server.shutdown_and_join();
    assert_eq!(summary.cache_misses, 1);
    assert_eq!(summary.cache_hits, 2);
}

#[test]
fn dimensionally_equal_spellings_hit_the_same_entry() {
    let (server, addr) = quick_server();
    let implicit = format!(
        "{REQUEST_HEADER}\nmodel = gpt2\ncluster = a\nnodes = 1\n\
         tensor = 2\npipeline = 4\nseq_len = 512\nglobal_batch = 16\n"
    );
    // Same config, different order, defaults spelled out, a comment.
    let explicit = format!(
        "{REQUEST_HEADER}\n# same thing, spelled out\nheadroom = 0.875\n\
         method = adapipe\ndata = 1\nmicro_batch = 1\nfp32_grads = false\n\
         global_batch = 16\nseq_len = 512\npipeline = 4\ntensor = 2\n\
         nodes = 1\ncluster = a\nmodel = gpt2\n"
    );
    let cold = client::post_plan(&addr, &implicit).unwrap();
    assert_eq!(cold.header("x-adapipe-cache"), Some("miss"));
    let hit = client::post_plan(&addr, &explicit).unwrap();
    assert_eq!(hit.header("x-adapipe-cache"), Some("hit"), "{}", hit.body);
    assert_eq!(hit.body, cold.body);
    assert_eq!(
        hit.header("x-adapipe-digest"),
        cold.header("x-adapipe-digest")
    );
    server.shutdown_and_join();
}

#[test]
fn malformed_and_infeasible_requests_map_to_4xx() {
    let (server, addr) = quick_server();

    let garbage = client::post_plan(&addr, "not a plan request\n").unwrap();
    assert_eq!(garbage.status, 400, "{}", garbage.body);
    assert!(garbage.body.contains("first line"), "{}", garbage.body);

    let unknown_model = client::post_plan(
        &addr,
        &format!(
            "{REQUEST_HEADER}\nmodel = bloom\ntensor = 1\npipeline = 2\n\
             seq_len = 128\nglobal_batch = 4\n"
        ),
    )
    .unwrap();
    assert_eq!(unknown_model.status, 400);
    assert!(
        unknown_model.body.contains("model"),
        "{}",
        unknown_model.body
    );

    // GPT-3 on one Atlas node cannot fit: the planner refuses, 422.
    let infeasible = client::post_plan(
        &addr,
        &format!(
            "{REQUEST_HEADER}\nmodel = gpt3\ncluster = b\nnodes = 1\n\
             tensor = 1\npipeline = 8\nseq_len = 4096\nglobal_batch = 64\n"
        ),
    )
    .unwrap();
    assert_eq!(infeasible.status, 422, "{}", infeasible.body);
    assert!(
        infeasible.body.contains("cannot run"),
        "{}",
        infeasible.body
    );

    server.shutdown_and_join();
}

#[test]
fn saturating_the_queue_yields_503_with_retry_after() {
    // One worker, queue depth 1, and slow plans: concurrent cold
    // requests must overflow and be rejected, not parked.
    let (server, addr) = start(ServeConfig {
        port: 0,
        workers: 1,
        queue_depth: 1,
        plan_delay: Some(Duration::from_millis(300)),
        ..ServeConfig::default()
    });
    let mut req = gpt2_request();
    req.seq_len = 256; // distinct config per thread → all misses
    let handles: Vec<_> = (0..6)
        .map(|i| {
            let addr = addr.clone();
            let mut req = req.clone();
            req.global_batch = 8 * (i + 1); // six distinct digests
            std::thread::spawn(move || client::post_plan(&addr, &req.to_wire_text()))
        })
        .collect();
    // Under full-workspace test load a client connection can be dropped
    // at the transport level before the daemon sees it; such a drop says
    // nothing about backpressure, so it is ignored rather than retried
    // (a retry could land after the queue drains and skew the counts).
    let responses: Vec<_> = handles
        .into_iter()
        .filter_map(|h| h.join().unwrap().ok())
        .collect();
    let oks = responses.iter().filter(|r| r.status == 200).count();
    let busy: Vec<_> = responses.iter().filter(|r| r.status == 503).collect();
    assert!(oks >= 1, "someone must get through");
    assert!(
        !busy.is_empty(),
        "expected at least one 503, got statuses {:?}",
        responses.iter().map(|r| r.status).collect::<Vec<_>>()
    );
    for r in &busy {
        assert_eq!(r.header("retry-after"), Some("1"), "{:?}", r.headers);
    }
    let summary = server.shutdown_and_join();
    // `>=`: a 503 the daemon counted can still be lost in transport.
    assert!(
        summary.rejected >= busy.len() as u64,
        "daemon counted {} rejections but clients saw {}",
        summary.rejected,
        busy.len()
    );
}

#[test]
fn expired_deadline_is_rejected_and_late_finish_is_diagnosed() {
    let (server, addr) = start(ServeConfig {
        port: 0,
        workers: 1,
        queue_depth: 8,
        plan_delay: Some(Duration::from_millis(120)),
        ..ServeConfig::default()
    });

    // A 1 ms deadline with a 120 ms plan delay: the request is either
    // rejected in queue (behind the first) or served late with the
    // deadline-missed marker. Fire two so at least one queues.
    let mut req = gpt2_request();
    req.deadline = Some(MicroSecs::new(1_000.0));
    let handles: Vec<_> = (0..2)
        .map(|i| {
            let addr = addr.clone();
            let mut req = req.clone();
            req.global_batch = 16 * (i + 1);
            std::thread::spawn(move || client::post_plan(&addr, &req.to_wire_text()).unwrap())
        })
        .collect();
    let responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for r in &responses {
        match r.status {
            200 => assert_eq!(
                r.header("x-adapipe-deadline"),
                Some("missed"),
                "{:?}",
                r.headers
            ),
            503 => assert!(r.body.contains("deadline expired"), "{}", r.body),
            other => panic!("unexpected status {other}: {}", r.body),
        }
    }
    // At least one finished late → the watchdog log has an event and
    // /metrics reports the counter.
    let metrics = client::get(&addr, "/metrics").unwrap();
    let v = json::parse(&metrics.body).expect("valid metrics JSON");
    let counters = v.get("counters").expect("counters object");
    let missed = counters
        .get(keys::SERVE_DEADLINE_MISSED)
        .and_then(|c| c.as_f64())
        .unwrap_or(0.0);
    let rejected = counters
        .get(keys::SERVE_REJECTED_DEADLINE)
        .and_then(|c| c.as_f64())
        .unwrap_or(0.0);
    assert!(
        missed + rejected >= 1.0,
        "no deadline accounting in {}",
        metrics.body
    );
    server.shutdown_and_join();
}

#[test]
fn metrics_expose_serve_and_iso_cache_families() {
    let (server, addr) = quick_server();
    let body = gpt2_request().to_wire_text();
    client::post_plan(&addr, &body).unwrap();
    client::post_plan(&addr, &body).unwrap();

    let resp = client::get(&addr, "/metrics").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("content-type"), Some("application/json"));
    let v = json::parse(&resp.body).expect("valid metrics JSON");
    assert_eq!(
        v.get("schema").and_then(|s| s.as_str()),
        Some("adapipe-obs/v1")
    );
    let counters = v.get("counters").expect("counters object");
    for key in [
        keys::SERVE_REQUESTS,
        keys::SERVE_CACHE_HITS,
        keys::SERVE_CACHE_MISSES,
        keys::ISO_CACHE_MISSES,
    ] {
        assert!(
            counters.get(key).and_then(|c| c.as_f64()).unwrap_or(0.0) > 0.0,
            "missing counter {key}: {}",
            resp.body
        );
    }
    let gauges = v.get("gauges").expect("gauges object");
    for key in [keys::SERVE_CACHE_HIT_RATE, keys::ISO_CACHE_HIT_RATE] {
        assert!(
            gauges.get(key).is_some(),
            "missing gauge {key}: {}",
            resp.body
        );
    }
    // The planner's own instrumentation flows into the same recorder.
    assert!(
        counters.get("partition.leaf_evals").is_some(),
        "planner metrics missing: {}",
        resp.body
    );
    server.shutdown_and_join();
}

#[test]
fn trace_of_a_real_request_covers_every_phase() {
    let (server, addr) = quick_server();
    let req = gpt2_request();
    let cold = client::post_plan(&addr, &req.to_wire_text()).unwrap();
    assert_eq!(cold.status, 200, "{}", cold.body);

    // The trace id is deterministic: digest prefix + sequence, no
    // wall-clock. The first plan request of this server is sequence 1.
    let trace_id = cold
        .header("x-adapipe-trace")
        .expect("plan responses carry X-Adapipe-Trace")
        .to_string();
    let digest = req.digest();
    assert_eq!(trace_id, format!("{}-1", &digest[..16]));

    let trace = client::get(&addr, &format!("/v1/trace/{trace_id}")).unwrap();
    assert_eq!(trace.status, 200, "{}", trace.body);
    assert_eq!(trace.header("content-type"), Some("application/json"));
    let json::Value::Array(events) = json::parse(&trace.body).expect("valid trace JSON") else {
        panic!("trace must be a JSON array: {}", trace.body);
    };
    let names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .collect();
    // Queue wait, parse, every planner phase, verify, cache insert.
    for phase in [
        keys::SPAN_SERVE_QUEUE_WAIT,
        keys::SPAN_SERVE_PARSE,
        keys::SPAN_PLAN,
        keys::SPAN_PLAN_PROFILE,
        keys::SPAN_PLAN_PARTITION,
        keys::SPAN_PLAN_MATERIALIZE,
        keys::SPAN_SERVE_VERIFY,
        keys::SPAN_SERVE_CACHE_INSERT,
    ] {
        assert!(names.contains(&phase), "span {phase} missing in {names:?}");
    }
    // Chrome-trace structural invariants: sorted non-negative
    // timestamps, every event complete ("X") or metadata ("M").
    let mut last_ts = f64::NEG_INFINITY;
    for ev in &events {
        let ph = ev.get("ph").and_then(|p| p.as_str()).expect("ph");
        if ph == "M" {
            continue;
        }
        assert_eq!(ph, "X", "only complete events: {ev:?}");
        let ts = ev.get("ts").and_then(|t| t.as_f64()).expect("ts");
        assert!(ts >= last_ts && ts >= 0.0);
        last_ts = ts;
    }

    // Cache hits trace too (queue wait + parse), under a fresh id.
    let hit = client::post_plan(&addr, &req.to_wire_text()).unwrap();
    let hit_id = hit.header("x-adapipe-trace").unwrap().to_string();
    assert_eq!(hit_id, format!("{}-2", &digest[..16]));
    assert_eq!(
        client::get(&addr, &format!("/v1/trace/{hit_id}"))
            .unwrap()
            .status,
        200
    );

    let missing = client::get(&addr, "/v1/trace/nope-0").unwrap();
    assert_eq!(missing.status, 404);
    server.shutdown_and_join();
}

#[test]
fn trace_store_retention_is_bounded() {
    let (server, addr) = start(ServeConfig {
        port: 0,
        workers: 1,
        trace_capacity: 1,
        ..ServeConfig::default()
    });
    let body = gpt2_request().to_wire_text();
    let first = client::post_plan(&addr, &body).unwrap();
    let second = client::post_plan(&addr, &body).unwrap(); // cache hit, new id
    let first_id = first.header("x-adapipe-trace").unwrap().to_string();
    let second_id = second.header("x-adapipe-trace").unwrap().to_string();
    assert_ne!(first_id, second_id);
    assert_eq!(
        client::get(&addr, &format!("/v1/trace/{first_id}"))
            .unwrap()
            .status,
        404,
        "oldest trace must be evicted at capacity 1"
    );
    assert_eq!(
        client::get(&addr, &format!("/v1/trace/{second_id}"))
            .unwrap()
            .status,
        200
    );
    server.shutdown_and_join();
}

#[test]
fn backpressure_and_admin_dump_produce_flight_artifacts() {
    let flight_dir = std::env::temp_dir().join(format!(
        "adapipe-flight-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let (server, addr) = start(ServeConfig {
        port: 0,
        workers: 1,
        queue_depth: 1,
        plan_delay: Some(Duration::from_millis(300)),
        flight_dir: Some(flight_dir.clone()),
        ..ServeConfig::default()
    });

    // Deterministic 503 flood: six distinct cold digests against one
    // slow worker and a depth-1 queue.
    let mut req = gpt2_request();
    req.seq_len = 256;
    let handles: Vec<_> = (0..6)
        .map(|i| {
            let addr = addr.clone();
            let mut req = req.clone();
            req.global_batch = 8 * (i + 1);
            std::thread::spawn(move || client::post_plan(&addr, &req.to_wire_text()).unwrap())
        })
        .collect();
    let responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let rejected = responses.iter().filter(|r| r.status == 503).count();
    assert!(rejected >= 1, "flood must trigger backpressure");

    // The automatic dump artifact exists and parses as adapipe-flight/v1.
    let auto_path = flight_dir.join(format!("flight-{}.json", keys::FLIGHT_BACKPRESSURE));
    let auto_text = std::fs::read_to_string(&auto_path)
        .unwrap_or_else(|e| panic!("no auto dump at {}: {e}", auto_path.display()));
    let auto = json::parse(&auto_text).expect("valid flight JSON");
    assert_eq!(
        auto.get("schema").and_then(|s| s.as_str()),
        Some("adapipe-flight/v1")
    );
    assert_eq!(
        auto.get("reason").and_then(|s| s.as_str()),
        Some(keys::FLIGHT_BACKPRESSURE)
    );

    // The on-demand dump returns the ring with the rejection events.
    let dump = client::request(&addr, "POST", "/admin/dump", None).unwrap();
    assert_eq!(dump.status, 200, "{}", dump.body);
    let v = json::parse(&dump.body).expect("valid dump JSON");
    assert_eq!(
        v.get("schema").and_then(|s| s.as_str()),
        Some("adapipe-flight/v1")
    );
    assert_eq!(
        v.get("reason").and_then(|s| s.as_str()),
        Some(keys::FLIGHT_MANUAL)
    );
    let Some(json::Value::Array(events)) = v.get("events") else {
        panic!("events array: {}", dump.body);
    };
    let backpressure = events
        .iter()
        .filter(|e| e.get("kind").and_then(|k| k.as_str()) == Some(keys::FLIGHT_BACKPRESSURE))
        .count();
    assert_eq!(backpressure, rejected, "one flight event per 503");

    server.shutdown_and_join();
    // lint: allow(swallowed-result): best-effort temp cleanup
    let _cleaned = std::fs::remove_dir_all(&flight_dir);
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let (server, addr) = start(ServeConfig {
        port: 0,
        workers: 1,
        queue_depth: 4,
        plan_delay: Some(Duration::from_millis(250)),
        ..ServeConfig::default()
    });

    // Start a slow cold plan, then immediately request shutdown.
    let slow = {
        let addr = addr.clone();
        let body = gpt2_request().to_wire_text();
        std::thread::spawn(move || client::post_plan(&addr, &body).unwrap())
    };
    std::thread::sleep(Duration::from_millis(60)); // let it reach a worker
    let draining = client::request(&addr, "POST", "/admin/shutdown", None).unwrap();
    assert_eq!(draining.status, 200, "{}", draining.body);

    let slow_resp = slow.join().unwrap();
    assert_eq!(slow_resp.status, 200, "in-flight request must complete");
    assert!(slow_resp.body.starts_with("adapipe-plan v2"));

    let summary = server.join();
    assert_eq!(summary.cache_misses, 1);
    // The daemon is really gone: new connections fail or are refused.
    assert!(client::get(&addr, "/healthz").is_err());
}
