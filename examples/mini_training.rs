//! Run the miniature pipeline-parallel training engine end to end:
//! plan with the real AdaPipe planner on a scaled-down device, map the
//! plan's per-unit recomputation strategy into the executor, and verify
//! the loss trajectory is bit-identical to the no-recomputation run.
//!
//! ```bash
//! cargo run --release --example mini_training
//! ```

use adapipe::{Method, Planner};
use adapipe_hw::{ClusterSpec, DeviceSpec, LinkSpec};
use adapipe_model::{ParallelConfig, TrainConfig};
use adapipe_train::{train, TrainerConfig};
use adapipe_units::{Bytes, BytesPerSec, FlopsPerSec, MicroSecs};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The miniature model the training engine runs.
    let mut cfg = TrainerConfig::tiny_for_tests();
    cfg.decoder_layers = 4;
    cfg.seq_len = 16;
    cfg.dims.max_seq = 16;
    cfg.micro_batches = 4;
    cfg.steps = 40;
    cfg.lr = 0.1;

    // A deliberately tiny "device" so the planner's knapsack actually
    // has to choose what to save: shrink the capacity until some stage
    // recomputes part (but not all) of its units.
    let parallel = ParallelConfig::new(1, cfg.stages, 1)?;
    let train_cfg = TrainConfig::new(1, cfg.seq_len, cfg.micro_batches)?;
    let spec = cfg.model_spec();
    let mut plan = None;
    for capacity in (32..=256u64).rev().map(|k| k * 1024) {
        let device = DeviceSpec::builder("toy-accelerator")
            .mem_bytes(Bytes::new(capacity))
            .peak_flops(FlopsPerSec::new(1e12))
            .hbm_bandwidth(BytesPerSec::new(1e11))
            .build();
        let cluster = ClusterSpec::new(
            "toy-cluster",
            device,
            2,
            1,
            LinkSpec::new(BytesPerSec::new(1e10), MicroSecs::new(1.0)),
            LinkSpec::new(BytesPerSec::new(1e9), MicroSecs::new(10.0)),
        );
        let planner = Planner::new(spec.clone(), cluster);
        let Ok(candidate) = planner.plan(Method::AdaPipe, parallel, train_cfg) else {
            break; // even full recomputation no longer fits
        };
        let nontrivial = candidate.stages.iter().any(|s| {
            let saved = s.saved_units();
            saved > s.strategy.len() - s.strategy.recomputed_count().max(1)
                && s.strategy.recomputed_count() > 0
        });
        let keep = candidate
            .stages
            .iter()
            .any(|s| s.strategy.recomputed_count() > 0);
        plan = Some(candidate);
        if nontrivial || keep {
            println!("toy device capacity: {capacity} bytes");
            break;
        }
    }
    let plan = plan.ok_or("no feasible toy plan")?;

    println!("planner chose for the toy device:");
    for (s, stage) in plan.stages.iter().enumerate() {
        println!(
            "  stage {s}: layers {}, {}/{} units saved",
            stage.range,
            stage.saved_units(),
            stage.strategy.len()
        );
    }

    // Map the plan into the executor: stage boundaries + saved flags.
    let partition: Vec<(usize, usize)> = plan
        .stages
        .iter()
        .map(|s| (s.range.first, s.range.last))
        .collect();
    let flags: Vec<Vec<bool>> = plan
        .stages
        .iter()
        .map(|s| s.strategy.iter().collect())
        .collect();
    let planned = cfg.with_partition(partition).with_adaptive(flags);

    println!(
        "\ntraining with the planned strategy ({} steps)...",
        cfg.steps
    );
    let planned_run = train(&planned);
    println!("training the no-recomputation reference...");
    let reference = train(&cfg.with_no_recompute());

    for step in (0..cfg.steps).step_by(8) {
        println!(
            "  step {step:>3}: planned {:.4}, reference {:.4}",
            planned_run.losses[step], reference.losses[step]
        );
    }
    assert_eq!(
        planned_run.losses, reference.losses,
        "recomputation must not change the math"
    );
    println!(
        "\nloss curves are bit-identical over {} steps — the planned strategy \
         trades memory for recompute without touching the numerics (§7.5).",
        cfg.steps
    );
    Ok(())
}
