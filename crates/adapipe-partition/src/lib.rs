//! Adaptive partitioning (§5 of the paper).
//!
//! Builds on the recomputation knapsack of [`adapipe_recompute`]: given
//! per-stage forward/backward times `f[s,i,j]`, `b[s,i,j]` for assigning
//! layers `i..=j` to stage `s` (each already optimized for that stage's
//! memory budget), find the stage boundaries minimizing one 1F1B
//! iteration:
//!
//! ```text
//! T = W₀ + E₀ + (n − p) · M₀
//! ```
//!
//! with the warmup/ending/steady recurrences of Equation (3) and
//! Algorithm 1. Two §5.3 optimizations are implemented:
//!
//! * **Isomorphism caching** — windows with the same length, the same
//!   initial layer kind and the same "touches the last layer" flag have
//!   identical layer sequences (transformers are homogeneous), so the
//!   knapsack result is computed once per equivalence class.
//! * **GCD rescaling** — inherited from the knapsack itself.
//!
//! On top of those, two engine-level accelerations (docs/parallel.md)
//! keep plans byte-identical while cutting cold-plan latency:
//!
//! * **Parallel leaf prefill** — [`KnapsackCostProvider::prefill`] fans
//!   the isomorphism-class representatives of
//!   [`algorithm1::reachable_windows`] out over an
//!   [`adapipe_exec::ExecPool`]; the DP then runs serially against a
//!   fully warmed cache.
//! * **Content-addressed subproblem cache** — [`subcache`] keys each
//!   leaf by its layer-window *profile* (not absolute indices), so
//!   isomorphic leaves are shared across solves, requests and models
//!   via a process-global sharded cache.
//!
//! # Example
//!
//! ```
//! use adapipe_hw::presets as hw;
//! use adapipe_memory::{MemoryModel, OptimizerSpec};
//! use adapipe_model::{presets, LayerSeq, ParallelConfig, TrainConfig};
//! use adapipe_partition::{algorithm1, KnapsackCostProvider};
//! use adapipe_profiler::Profiler;
//! use adapipe_units::Bytes;
//!
//! let model = presets::gpt2_small();
//! let parallel = ParallelConfig::new(2, 4, 1)?;
//! let train = TrainConfig::new(1, 1024, 32)?;
//! let table = Profiler::new(hw::cluster_a()).profile(&model, &parallel, &train);
//! let seq = LayerSeq::for_model(&model);
//! let mem = MemoryModel::new(model.clone(), parallel, OptimizerSpec::adam_fp32());
//!
//! let provider = KnapsackCostProvider::new(&seq, &table, &mem, Bytes::from_gib(80));
//! let plan = algorithm1::solve(&provider, seq.len(), 4, 32).expect("feasible");
//! assert_eq!(plan.ranges.len(), 4);
//! # Ok::<(), adapipe_model::ConfigError>(())
//! ```

#![forbid(unsafe_code)]

pub mod algorithm1;
mod cost;
pub mod exhaustive;
mod provider;
pub mod subcache;

pub use adapipe_exec::CacheStats;
pub use cost::{f1b_iteration_time, F1bBreakdown, StageTimes};
pub use provider::{KnapsackCostProvider, OracleCostProvider, StageCostProvider};
pub use subcache::SubproblemCache;
