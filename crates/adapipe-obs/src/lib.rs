//! # adapipe-obs: observability for the AdaPipe search engine
//!
//! The AdaPipe planner is a stack of nested dynamic programs — the §4
//! recomputation knapsack, the §5 Algorithm 1 partition DP, the §5.3
//! isomorphism cache — feeding a discrete-event simulator. This crate
//! makes that machinery observable without perturbing it:
//!
//! - a thread-safe **metrics registry** ([`Recorder`]) with monotonic
//!   counters, gauges and bounded timing histograms (p50/p95/p99/max,
//!   O(buckets) memory via [`hist::StreamingHistogram`]);
//! - a structured **span API** ([`Recorder::span`], [`span!`]) recording
//!   nested begin/end events with wall-clock durations;
//! - a **flight recorder** ([`flight::FlightRecorder`]): a bounded,
//!   overwrite-oldest ring of structured incident events, dumped to an
//!   artifact when something goes wrong;
//! - **exporters**: [`report::metrics_json`] renders a run's metrics as
//!   a JSON report, [`trace::chrome_trace_json`] renders its spans in
//!   Chrome Trace Event Format (loadable in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev));
//! - a dependency-free **JSON parser** ([`json`]) used to validate the
//!   exported artifacts in tests.
//!
//! The cardinal design rule is that a **disabled recorder is free**:
//! [`Recorder::disabled`] holds no allocation and every operation on it
//! is a single branch on an `Option`, so instrumented hot paths (the
//! knapsack inner loop, the simulator event loop) cost nothing when no
//! sink is attached. Instrumented APIs therefore take a `&Recorder`
//! unconditionally and the default constructors pass a disabled one.
//!
//! ```
//! use adapipe_obs::{Recorder, report, trace};
//!
//! let rec = Recorder::new();
//! {
//!     let _outer = rec.span("plan").with_arg("method", &"adapipe");
//!     rec.add("recompute.knapsack.cells", 1024);
//!     rec.observe("recompute.knapsack.us", 17.5);
//!     let _inner = rec.span("plan.partition");
//! } // spans record on drop
//! let snap = rec.snapshot();
//! assert_eq!(snap.counters["recompute.knapsack.cells"], 1024);
//! let metrics = report::metrics_json(&snap, &[("model", "gpt2")]);
//! let trace = trace::chrome_trace_json(&snap);
//! assert!(adapipe_obs::json::parse(&metrics).is_ok());
//! assert!(adapipe_obs::json::parse(&trace).is_ok());
//! ```
//!
//! See `docs/observability.md` for the metric taxonomy and the span
//! naming convention used across the workspace.

#![forbid(unsafe_code)]

mod recorder;

pub mod flight;
pub mod hist;
pub mod json;
pub mod keys;
pub mod report;
pub mod trace;

pub use flight::{FlightEvent, FlightRecorder, FlightSnapshot};
pub use hist::StreamingHistogram;
pub use recorder::{HistogramSummary, Recorder, Snapshot, SpanEvent, SpanGuard};
