pub fn matmul_time(flops: f64, bytes: u64) -> f64 {
    flops + bytes as f64
}
