//! Offline shim for `serde`.
//!
//! The workspace only uses `use serde::{Deserialize, Serialize}` for
//! derives; no serializer backend is ever instantiated. This shim
//! provides the two marker traits plus the (no-op) derive macros so the
//! whole workspace builds without crates.io access. See
//! `shims/README.md`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (no serializer exists in this
/// workspace, so the trait is never required as a bound).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Namespace stand-in for `serde::de`.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Namespace stand-in for `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}
