//! The analytic 1F1B cost model (§5.1, Equation (3)).

use adapipe_units::{convert, MicroSecs};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-stage forward and backward times of one micro-batch (`F_s`, `B_s`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageTimes {
    /// Forward time of one micro-batch through the stage.
    pub f: MicroSecs,
    /// Backward time of one micro-batch through the stage (including any
    /// recomputation the stage's strategy performs).
    pub b: MicroSecs,
}

impl StageTimes {
    /// Micro-step time `F_s + B_s` — what Figure 9 of the paper plots.
    #[must_use]
    pub fn micro_step(&self) -> MicroSecs {
        self.f + self.b
    }
}

/// Breakdown of one 1F1B iteration into the three phases of §2.1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct F1bBreakdown {
    /// Warmup time `W₀`: first forward until stage 0's first backward.
    pub warmup: MicroSecs,
    /// Steady time `(n − p) · M₀`.
    pub steady: MicroSecs,
    /// Ending time `E₀`.
    pub ending: MicroSecs,
    /// Bottleneck micro-step `M₀ = max_s (F_s + B_s)`.
    pub bottleneck: MicroSecs,
}

impl F1bBreakdown {
    /// Total iteration time `W₀ + steady + E₀`.
    #[must_use]
    pub fn total(&self) -> MicroSecs {
        self.warmup + self.steady + self.ending
    }
}

impl fmt::Display for F1bBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "warmup {:.3}s + steady {:.3}s + ending {:.3}s = {:.3}s",
            self.warmup.as_secs(),
            self.steady.as_secs(),
            self.ending.as_secs(),
            self.total().as_secs()
        )
    }
}

/// Evaluates the Equation (3) recurrences for a concrete pipeline.
///
/// For the last stage `W = F`, `E = B`, `M = F + B`; going backwards,
///
/// ```text
/// W_s = F_s + max(W_{s+1} + B_{s+1}, (p − s − 1) · F_s)
/// E_s = B_s + max(E_{s+1} + F_{s+1}, (p − s − 1) · B_s)
/// M_s = max(M_{s+1}, F_s + B_s)
/// ```
///
/// and the iteration takes `W₀ + E₀ + (n − p) · M₀`.
///
/// # Panics
///
/// Panics if `times` is empty or `n` is smaller than the stage count.
#[must_use]
pub fn f1b_iteration_time(times: &[StageTimes], n: usize) -> F1bBreakdown {
    let p = times.len();
    assert!(p > 0, "pipeline must have at least one stage");
    assert!(n >= p, "1F1B needs at least p micro-batches (n={n}, p={p})");

    let last = times[p - 1];
    let mut w = last.f;
    let mut e = last.b;
    let mut m = last.f + last.b;
    let mut prev = last;
    for s in (0..p - 1).rev() {
        let cur = times[s];
        let ahead = convert::count_f64(p - s - 1);
        w = cur.f + (w + prev.b).max(ahead * cur.f);
        e = cur.b + (e + prev.f).max(ahead * cur.b);
        m = m.max(cur.f + cur.b);
        prev = cur;
    }
    F1bBreakdown {
        warmup: w,
        steady: convert::count_f64(n - p) * m,
        ending: e,
        bottleneck: m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(p: usize, f: f64, b: f64) -> Vec<StageTimes> {
        vec![
            StageTimes {
                f: MicroSecs::new(f),
                b: MicroSecs::new(b),
            };
            p
        ]
    }

    #[test]
    fn single_stage_is_sequential() {
        let bd = f1b_iteration_time(&uniform(1, 2.0, 3.0), 10);
        assert!((bd.total().as_micros() - 10.0 * 5.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_pipeline_matches_closed_form() {
        // Balanced 1F1B: T = (n + p − 1)(f + b).
        for p in [2usize, 4, 8] {
            for n in [p, 2 * p, 64] {
                let (f, b) = (1.0, 2.0);
                let bd = f1b_iteration_time(&uniform(p, f, b), n);
                let expect = (n + p - 1) as f64 * (f + b);
                assert!(
                    (bd.total().as_micros() - expect).abs() < 1e-9,
                    "p={p} n={n}: {} vs {expect}",
                    bd.total()
                );
            }
        }
    }

    #[test]
    fn bubble_fraction_matches_paper_formula() {
        // Bubble ratio of 1F1B is (p − 1) / n.
        let (p, n) = (8usize, 64usize);
        let bd = f1b_iteration_time(&uniform(p, 1.0, 2.0), n);
        let work = n as f64 * 3.0;
        let bubble = bd.total().as_micros() - work;
        let ratio = bubble / work;
        assert!((ratio - (p - 1) as f64 / n as f64).abs() < 1e-9);
    }

    #[test]
    fn slow_stage_dominates_steady_phase() {
        let mut times = uniform(4, 1.0, 2.0);
        times[2] = StageTimes {
            f: MicroSecs::new(2.0),
            b: MicroSecs::new(4.0),
        };
        let bd = f1b_iteration_time(&times, 100);
        assert!((bd.bottleneck.as_micros() - 6.0).abs() < 1e-12);
        assert!((bd.steady.as_micros() - 96.0 * 6.0).abs() < 1e-9);
    }

    #[test]
    fn two_stage_example_from_figure3() {
        // Stage 1 warmup is one forward; stage 0 warmup adds its own
        // forward plus max(fwd+bwd downstream, its second forward).
        let times = [
            StageTimes {
                f: MicroSecs::new(1.0),
                b: MicroSecs::new(2.0),
            },
            StageTimes {
                f: MicroSecs::new(1.0),
                b: MicroSecs::new(2.0),
            },
        ];
        let bd = f1b_iteration_time(&times, 2);
        // W0 = 1 + max(1+2, 1) = 4; E0 = 2 + max(2+1, 2) = 5; steady 0.
        assert!((bd.warmup.as_micros() - 4.0).abs() < 1e-12);
        assert!((bd.ending.as_micros() - 5.0).abs() < 1e-12);
        assert!((bd.total().as_micros() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn reducing_backward_time_shortens_warmup() {
        let slow = f1b_iteration_time(&uniform(4, 1.0, 3.0), 8);
        let fast = f1b_iteration_time(&uniform(4, 1.0, 2.0), 8);
        assert!(fast.warmup < slow.warmup);
        assert!(fast.ending < slow.ending);
    }

    #[test]
    #[should_panic(expected = "at least p micro-batches")]
    fn underfilled_pipeline_panics() {
        let _ = f1b_iteration_time(&uniform(4, 1.0, 1.0), 3);
    }

    #[test]
    fn micro_step_is_f_plus_b() {
        let st = StageTimes {
            f: MicroSecs::new(1.5),
            b: MicroSecs::new(2.5),
        };
        assert!((st.micro_step().as_micros() - 4.0).abs() < 1e-15);
    }
}
