//! `xtask` library surface: the source-level lint pass and the bench
//! artifact differ.
//!
//! Exposed as a library so the fixture-based self-tests in `tests/`
//! can drive individual rules against deliberately-violating source
//! files (see `tests/fixtures/`); the `xtask` binary in `main.rs` is a
//! thin CLI over [`lint::run`] and [`bench_diff::diff_dirs`].

#![forbid(unsafe_code)]

pub mod bench_diff;
pub mod lint;
pub mod source;
