//! Algorithm 1 of the paper: the partitioning dynamic program.
//!
//! `P[s, i]` is the best plan for assigning layers `i..` to stages
//! `s..p−1`. The DP sweeps stages from `p−2` down to `0`, trying every
//! split point `j` for stage `s`'s window `i..=j`, and combines the
//! Equation (3) recurrences with the knapsack-optimized `f[s,i,j]` and
//! `b[s,i,j]` supplied by a [`StageCostProvider`].
//!
//! Infeasible windows (`None` from the provider) simply contribute no
//! candidate; if no feasible plan reaches `P[0, 0]`, the whole
//! configuration is out of memory.

// The DP sweeps below keep the paper's index notation (P[s, i], splits j).
#![allow(clippy::needless_range_loop)]

use crate::cost::{F1bBreakdown, StageTimes};
use crate::provider::StageCostProvider;
use adapipe_model::LayerRange;
use adapipe_obs::{keys, Recorder};
use adapipe_units::{convert, Cost, MicroSecs};
use serde::{Deserialize, Serialize};

/// The output of Algorithm 1: per-stage layer ranges, their optimized
/// forward/backward times, and the analytic iteration breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionPlan {
    /// Layer range of each stage, in pipeline order.
    pub ranges: Vec<LayerRange>,
    /// Optimized `F_s`/`B_s` of each stage.
    pub stage_times: Vec<StageTimes>,
    /// Warmup / steady / ending decomposition of one iteration.
    pub breakdown: F1bBreakdown,
}

impl PartitionPlan {
    /// Predicted iteration time.
    #[must_use]
    pub fn iteration_time(&self) -> MicroSecs {
        self.breakdown.total()
    }
}

/// One DP state: the best continuation from `(stage, first_layer)`.
#[derive(Debug, Clone, Copy)]
struct State {
    /// Warmup time `W_s`.
    w: MicroSecs,
    /// Ending time `E_s`.
    e: MicroSecs,
    /// Bottleneck micro-step `M_s` over stages `s..`.
    m: MicroSecs,
    /// Forward time of stage `s` itself.
    f: MicroSecs,
    /// Backward time of stage `s` itself.
    b: MicroSecs,
    /// Objective `W + E + (n − p + s)·M` used for comparisons; the
    /// NaN-free [`Cost`] order makes `<` a genuine total order here.
    t: Cost,
    /// Chosen last layer of stage `s` (split point).
    split: usize,
}

/// Runs Algorithm 1 for `num_layers` layers over `p` stages and `n`
/// micro-batches per iteration. Returns `None` when no feasible partition
/// exists (every choice runs out of memory somewhere).
///
/// # Panics
///
/// Panics if `p == 0`, `p > num_layers`, or `n < p`.
#[must_use]
pub fn solve(
    provider: &impl StageCostProvider,
    num_layers: usize,
    p: usize,
    n: usize,
) -> Option<PartitionPlan> {
    solve_traced(provider, num_layers, p, n, &Recorder::disabled())
}

/// [`solve`], reporting DP effort to `rec`: states filled
/// (`partition.alg1.states`), split candidates scored
/// (`partition.alg1.candidates`) and total solve time inside a
/// `partition.alg1` span.
///
/// # Panics
///
/// Panics if `p == 0`, `p > num_layers`, or `n < p`.
#[must_use]
pub fn solve_traced(
    provider: &impl StageCostProvider,
    num_layers: usize,
    p: usize,
    n: usize,
    rec: &Recorder,
) -> Option<PartitionPlan> {
    let _span = rec.span_cat(keys::SPAN_PARTITION_ALG1, "partition");
    let mut states: u64 = 0;
    let mut candidates: u64 = 0;
    assert!(p > 0, "pipeline size must be positive");
    assert!(
        p <= num_layers,
        "more stages ({p}) than layers ({num_layers})"
    );
    assert!(n >= p, "1F1B needs n >= p (n={n}, p={p})");
    let l = num_layers;

    // P[s][i]; only i in [s, l - (p - s)] are reachable.
    let mut table: Vec<Vec<Option<State>>> = vec![vec![None; l]; p];

    // Base case: the last stage takes everything from i to the end.
    for i in (p - 1)..l {
        states += 1;
        candidates += 1;
        let range = LayerRange::new(i, l - 1);
        if let Some(times) = provider.stage_times(p - 1, range) {
            let m = times.f + times.b;
            table[p - 1][i] = Some(State {
                w: times.f,
                e: times.b,
                m,
                f: times.f,
                b: times.b,
                t: Cost::of(times.f + times.b + convert::count_f64(n - 1) * m),
                split: l - 1,
            });
        }
    }

    // Backwards sweep over stages.
    for s in (0..p - 1).rev() {
        let remaining = p - s; // stages still to place, including s
        for i in s..=(l - remaining) {
            states += 1;
            let mut best: Option<State> = None;
            // Stage s takes layers i..=j; the tail needs p-1-s layers.
            for j in i..=(l - remaining) {
                candidates += 1;
                let Some(next) = table[s + 1][j + 1] else {
                    continue;
                };
                let range = LayerRange::new(i, j);
                let Some(times) = provider.stage_times(s, range) else {
                    continue;
                };
                let ahead = convert::count_f64(p - s - 1);
                let w = times.f + (next.w + next.b).max(ahead * times.f);
                let e = times.b + (next.e + next.f).max(ahead * times.b);
                let m = next.m.max(times.f + times.b);
                let t = Cost::of(w + e + convert::count_f64(n - p + s) * m);
                if best.is_none_or(|cur| t < cur.t) {
                    best = Some(State {
                        w,
                        e,
                        m,
                        f: times.f,
                        b: times.b,
                        t,
                        split: j,
                    });
                }
            }
            table[s][i] = best;
        }
    }

    rec.add(keys::ALG1_STATES, states);
    rec.add(keys::ALG1_CANDIDATES, candidates);

    // Reconstruct the winning partition from P[0, 0].
    let mut ranges = Vec::with_capacity(p);
    let mut stage_times = Vec::with_capacity(p);
    let mut first = 0usize;
    for s in 0..p {
        let state = table[s][first]?;
        let range = LayerRange::new(first, state.split);
        ranges.push(range);
        stage_times.push(StageTimes {
            f: state.f,
            b: state.b,
        });
        first = state.split + 1;
    }
    let root = (*table.first()?.first()?)?;
    Some(PartitionPlan {
        ranges,
        stage_times,
        breakdown: F1bBreakdown {
            warmup: root.w,
            steady: convert::count_f64(n - p) * root.m,
            ending: root.e,
            bottleneck: root.m,
        },
    })
}

/// Enumerates every `(stage, layer window)` pair [`solve`] can query for
/// an instance of `num_layers` layers over `p` stages, in the same order
/// the DP visits them. Feed the result to
/// [`KnapsackCostProvider::prefill`](crate::KnapsackCostProvider::prefill)
/// to evaluate the isomorphism-class representatives in parallel before
/// the serial DP sweep; the DP then answers every `stage_times` query
/// from the warm cache.
///
/// The sweep over-approximates slightly: `solve` skips a window when the
/// tail `P[s+1][j+1]` is already known infeasible, while this
/// enumeration cannot know that. Extra windows only cost extra cached
/// leaves — the returned plan is unaffected.
///
/// # Panics
///
/// Panics under the same preconditions as [`solve`]: `p == 0` or
/// `p > num_layers`.
#[must_use]
pub fn reachable_windows(num_layers: usize, p: usize) -> Vec<(usize, LayerRange)> {
    assert!(p > 0, "pipeline size must be positive");
    assert!(
        p <= num_layers,
        "more stages ({p}) than layers ({num_layers})"
    );
    let l = num_layers;
    let mut windows = Vec::new();
    for i in (p - 1)..l {
        windows.push((p - 1, LayerRange::new(i, l - 1)));
    }
    for s in (0..p - 1).rev() {
        let remaining = p - s;
        for i in s..=(l - remaining) {
            for j in i..=(l - remaining) {
                windows.push((s, LayerRange::new(i, j)));
            }
        }
    }
    windows
}

/// Evaluates a *given* partition (e.g. the even-partitioning baseline)
/// under the same per-stage optimization: each stage still gets its best
/// recomputation strategy, only the boundaries are fixed. Returns `None`
/// if any stage is infeasible.
#[must_use]
pub fn evaluate_partition(
    provider: &impl StageCostProvider,
    ranges: &[LayerRange],
    n: usize,
) -> Option<PartitionPlan> {
    let mut stage_times = Vec::with_capacity(ranges.len());
    for (s, range) in ranges.iter().enumerate() {
        stage_times.push(provider.stage_times(s, *range)?);
    }
    let breakdown = crate::cost::f1b_iteration_time(&stage_times, n);
    Some(PartitionPlan {
        ranges: ranges.to_vec(),
        stage_times,
        breakdown,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::StageCostProvider;
    use adapipe_model::LayerRange;
    use adapipe_units::MicroSecs;

    /// A synthetic provider: layer `k` costs `weights[k]` forward and
    /// `2·weights[k]` backward, no memory constraints.
    struct Synthetic {
        weights: Vec<f64>,
    }

    impl StageCostProvider for Synthetic {
        fn stage_times(&self, _stage: usize, range: LayerRange) -> Option<StageTimes> {
            let f: f64 = self.weights[range.first..=range.last].iter().sum();
            Some(StageTimes {
                f: MicroSecs::new(f),
                b: MicroSecs::new(2.0 * f),
            })
        }
    }

    /// Exhaustive search over all partitions for small instances.
    fn exhaustive_best(provider: &impl StageCostProvider, l: usize, p: usize, n: usize) -> f64 {
        crate::exhaustive::solve(provider, l, p, n)
            .map_or(f64::INFINITY, |plan| plan.iteration_time().as_micros())
    }

    #[test]
    fn uniform_layers_get_even_partition_cost() {
        let provider = Synthetic {
            weights: vec![1.0; 8],
        };
        let plan = solve(&provider, 8, 4, 16).unwrap();
        // All stages must end up with equal work: bottleneck = 2 layers.
        assert!((plan.breakdown.bottleneck.as_micros() - 6.0).abs() < 1e-12);
        let lens: Vec<usize> = plan.ranges.iter().map(LayerRange::len).collect();
        assert_eq!(lens, vec![2, 2, 2, 2]);
    }

    #[test]
    fn heavy_tail_layer_gets_own_stage() {
        // One layer is 10x the others; the optimum isolates it.
        let mut weights = vec![1.0; 6];
        weights[5] = 10.0;
        let provider = Synthetic { weights };
        let plan = solve(&provider, 6, 3, 12).unwrap();
        let last = *plan.ranges.last().unwrap();
        assert_eq!((last.first, last.last), (5, 5));
    }

    #[test]
    fn dp_matches_exhaustive_search() {
        for (l, p, n) in [(6usize, 2usize, 8usize), (7, 3, 6), (8, 4, 8), (9, 3, 20)] {
            let weights: Vec<f64> = (0..l)
                .map(|k| 1.0 + 0.37 * (k as f64).sin().abs())
                .collect();
            let provider = Synthetic { weights };
            let plan = solve(&provider, l, p, n).unwrap();
            let best = exhaustive_best(&provider, l, p, n);
            assert!(
                (plan.iteration_time().as_micros() - best).abs() < 1e-9,
                "l={l} p={p} n={n}: dp {} vs exhaustive {best}",
                plan.iteration_time()
            );
        }
    }

    #[test]
    fn plan_is_valid_partition() {
        let provider = Synthetic {
            weights: vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0, 1.0],
        };
        let plan = solve(&provider, 7, 3, 9).unwrap();
        assert_eq!(plan.ranges[0].first, 0);
        assert_eq!(plan.ranges.last().unwrap().last, 6);
        for w in plan.ranges.windows(2) {
            assert_eq!(w[1].first, w[0].last + 1);
        }
    }

    /// Provider where stage 0 cannot hold more than `cap` layers
    /// (memory-infeasible otherwise).
    struct Capped {
        cap: usize,
    }

    impl StageCostProvider for Capped {
        fn stage_times(&self, stage: usize, range: LayerRange) -> Option<StageTimes> {
            if stage == 0 && range.len() > self.cap {
                return None;
            }
            Some(StageTimes {
                f: MicroSecs::new(range.len() as f64),
                b: MicroSecs::new(2.0 * range.len() as f64),
            })
        }
    }

    #[test]
    fn infeasible_windows_are_routed_around() {
        let plan = solve(&Capped { cap: 1 }, 8, 4, 8).unwrap();
        assert_eq!(plan.ranges[0].len(), 1);
    }

    #[test]
    fn fully_infeasible_returns_none() {
        let plan = solve(&Capped { cap: 0 }, 8, 4, 8);
        assert!(plan.is_none());
    }

    #[test]
    fn evaluate_matches_solve_for_optimal_ranges() {
        let provider = Synthetic {
            weights: vec![1.0, 2.0, 1.5, 0.5, 2.5, 1.0],
        };
        let plan = solve(&provider, 6, 3, 12).unwrap();
        let eval = evaluate_partition(&provider, &plan.ranges, 12).unwrap();
        assert!((eval.iteration_time() - plan.iteration_time()).abs() < MicroSecs::new(1e-9));
    }

    #[test]
    fn traced_solve_reports_dp_effort() {
        let provider = Synthetic {
            weights: vec![1.0; 8],
        };
        let rec = Recorder::new();
        let traced = solve_traced(&provider, 8, 4, 16, &rec).unwrap();
        let plain = solve(&provider, 8, 4, 16).unwrap();
        assert_eq!(traced, plain, "tracing must not change the plan");
        let snap = rec.snapshot();
        assert!(snap.counters["partition.alg1.states"] > 0);
        assert!(
            snap.counters["partition.alg1.candidates"] >= snap.counters["partition.alg1.states"]
        );
        assert_eq!(
            snap.spans
                .iter()
                .filter(|s| s.name == "partition.alg1")
                .count(),
            1
        );
    }

    /// Records every query a wrapped provider receives.
    struct Recording<'a> {
        inner: &'a Synthetic,
        seen: std::sync::Mutex<Vec<(usize, LayerRange)>>,
    }

    impl StageCostProvider for Recording<'_> {
        fn stage_times(&self, stage: usize, range: LayerRange) -> Option<StageTimes> {
            self.seen.lock().unwrap().push((stage, range));
            self.inner.stage_times(stage, range)
        }
    }

    #[test]
    fn reachable_windows_covers_every_solve_query() {
        for (l, p, n) in [(6usize, 2usize, 8usize), (8, 4, 8), (9, 3, 20), (5, 5, 5)] {
            let inner = Synthetic {
                weights: vec![1.0; l],
            };
            let rec = Recording {
                inner: &inner,
                seen: std::sync::Mutex::new(Vec::new()),
            };
            let _ = solve(&rec, l, p, n);
            let reachable: std::collections::HashSet<(usize, LayerRange)> =
                reachable_windows(l, p).into_iter().collect();
            for q in rec.seen.lock().unwrap().iter() {
                assert!(
                    reachable.contains(q),
                    "l={l} p={p}: solve queried {q:?} outside reachable_windows"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "more stages")]
    fn too_many_stages_panics() {
        let provider = Synthetic {
            weights: vec![1.0; 3],
        };
        let _ = solve(&provider, 3, 4, 8);
    }
}
